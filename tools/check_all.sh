#!/usr/bin/env bash
# The one merge gate: tier-1 build + full test suite, then every
# specialised checker — ASan/UBSan, TSan over the sweep worker pool, the
# state-hash determinism audit, a bounded chaos campaign, and the
# performance-regression gate.
# CI invokes exactly this script; run it locally before pushing anything
# that touches simulator, harness or serialization code.
#
#   tools/check_all.sh [--skip-perf]
#
# Environment:
#   GPUSIM_JOBS   parallel build/test jobs (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${GPUSIM_JOBS:-$(nproc)}"
SKIP_PERF=0
if [[ "${1:-}" == "--skip-perf" ]]; then
  SKIP_PERF=1
fi

echo "===== [1/6] tier-1: build + ctest ====="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build -j "$JOBS" --output-on-failure

echo "===== [2/6] determinism audit ====="
tools/check_determinism.sh build

echo "===== [3/6] chaos campaign ====="
tools/check_chaos.sh build

echo "===== [4/6] ASan + UBSan ====="
tools/check_sanitize.sh

echo "===== [5/6] TSan (sweep worker pool) ====="
tools/check_tsan.sh

if [[ "$SKIP_PERF" == "1" ]]; then
  echo "===== [6/6] perf gate: SKIPPED ====="
else
  echo "===== [6/6] perf gate ====="
  tools/check_perf.sh build
fi

echo "check_all: OK"
