#!/usr/bin/env bash
# Configure, build and run the parallel-sweep tests under ThreadSanitizer.
# Used before merging anything that touches the SweepRunner worker pool or
# the checkpoint-writer locking; a clean pass means no data races across
# the worker threads, the checkpoint mutex and the entry assembly.
#
#   tools/check_tsan.sh [build-dir]            (default: build-tsan)
#
# Runs only the concurrency-heavy tests by default — the sweep worker
# pool, the bounded result queue, and the JobManager batch tests (a full
# TSan suite run is slow); pass a ctest -R pattern as $2 to widen.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"
FILTER="${2:-sweep|bounded_queue|job_manager|jobs_kill_resume}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGPUSIM_TSAN=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

ctest --test-dir "$BUILD_DIR" -R "$FILTER" -j "$(nproc)" --output-on-failure
