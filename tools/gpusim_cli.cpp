// gpusim_cli — run arbitrary multiprogrammed workloads from the command
// line: pick applications, SM policy, estimation models and run length,
// and get the per-application slowdown report.
//
//   gpusim_cli --apps SD,SA
//   gpusim_cli --apps VA,CT,SD,SN --policy dase-fair --cycles 1000000
//   gpusim_cli --apps AA,SD --policy qos --qos-target 1.5
//   gpusim_cli --apps SB,VA --split 4,12 --models dase,mise,asm
//   gpusim_cli --sweep all --checkpoint sweep.jsonl --out sweep.json
//   gpusim_cli --apps SD,SA --snapshot-every 50000 --snapshot-dir snaps
//   gpusim_cli --apps SD,SA --restore snaps/SD+SA.simstate
//   gpusim_cli --apps SD,SA --audit-determinism
//   gpusim_cli --chaos 50 --chaos-seed 7 --cycles 40000 --out chaos.json
//   gpusim_cli --apps SD,SA --cycles 40000 --fault-schedule 'drop-resp:nth=200;seed=7'
//   gpusim_cli --job-file batch.jobs --manifest batch.manifest.jsonl
//   gpusim_cli --jobs-resume batch.manifest.jsonl
//   gpusim_cli --triage crash-bundles/run-SD+SA-c12345
//   gpusim_cli --version
//   gpusim_cli --list-apps
//   gpusim_cli --dump-config > gtx480.cfg ; gpusim_cli --config gtx480.cfg ...
//
// The flag list, the --help text and the exit-code contract all come from
// one table (src/harness/cli_flags.hpp): run `gpusim_cli --help` for the
// authoritative version of both.  SIGINT/SIGTERM drain gracefully in every
// mode — in-flight checkpoint lines flush whole, single runs snapshot, and
// the process exits 6 with everything resumable; a second signal exits
// immediately.
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common/build_info.hpp"
#include "common/config_io.hpp"
#include "common/fault_injection.hpp"
#include "common/sim_error.hpp"
#include "dase/dase_model.hpp"
#include "gpu/simulator.hpp"
#include "gpu/snapshot.hpp"
#include "harness/chaos.hpp"
#include "harness/cli_flags.hpp"
#include "harness/divergence.hpp"
#include "harness/job_manager.hpp"
#include "harness/runner.hpp"
#include "harness/shutdown.hpp"
#include "harness/sweep.hpp"
#include "harness/table_printer.hpp"
#include "harness/triage.hpp"
#include "kernels/app_registry.hpp"
#include "sched/governor.hpp"
#include "telemetry/hub.hpp"

namespace {

using namespace gpusim;

[[noreturn]] void usage(const char* argv0, const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr << render_usage(argv0);
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Strict unsigned parse: the whole token must be a decimal number no less
/// than `min`.  "0x10", "12abc", "-3" and "" are all rejected with a
/// message naming the flag.
u64 parse_u64(const char* argv0, const std::string& flag,
              const std::string& text, u64 min_value) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos) {
    usage(argv0, flag + " expects a non-negative integer, got '" + text + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    usage(argv0, flag + " value out of range: '" + text + "'");
  }
  if (parsed < min_value) {
    usage(argv0, flag + " must be at least " + std::to_string(min_value) +
                     ", got " + text);
  }
  return static_cast<u64>(parsed);
}

double parse_positive_double(const char* argv0, const std::string& flag,
                             const std::string& text) {
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (text.empty() || end == nullptr || *end != '\0' || !(parsed > 0.0)) {
    usage(argv0, flag + " expects a positive number, got '" + text + "'");
  }
  return parsed;
}

void print_result(const CoRunResult& result, const ModelSet& models) {
  std::cout << "workload " << result.label << ", " << result.cycles
            << " cycles\n\n";
  std::vector<std::string> headers = {"app", "IPC_shared", "IPC_alone",
                                      "actual"};
  if (models.dase) headers.push_back("DASE");
  if (models.mise) headers.push_back("MISE");
  if (models.asm_model) headers.push_back("ASM");
  TablePrinter table(headers);
  table.print_header();
  for (const AppResult& app : result.apps) {
    std::cout.width(12);
    std::cout << app.abbr;
    std::cout.width(12);
    std::cout << TablePrinter::num(app.ipc_shared, 3);
    std::cout.width(12);
    std::cout << TablePrinter::num(app.ipc_alone, 3);
    std::cout.width(12);
    std::cout << (app.actual_slowdown >= 1e5
                      ? std::string("starved")
                      : TablePrinter::num(app.actual_slowdown, 2));
    for (const char* model : {"DASE", "MISE", "ASM"}) {
      if (app.estimates.contains(model)) {
        std::cout.width(12);
        std::cout << TablePrinter::num(app.estimates.at(model), 2);
      }
    }
    std::cout << '\n';
  }
  std::cout << "\nunfairness "
            << (result.unfairness >= 1e5
                    ? std::string(">1e5")
                    : TablePrinter::num(result.unfairness, 2))
            << ", harmonic speedup "
            << TablePrinter::num(result.harmonic_speedup, 3)
            << ", policy actions " << result.repartitions << '\n';
  std::cout << "DRAM bandwidth:";
  for (std::size_t i = 0; i < result.apps.size(); ++i) {
    std::cout << ' ' << result.apps[i].abbr << '='
              << TablePrinter::pct(result.app_bw_share[i]);
  }
  std::cout << " wasted=" << TablePrinter::pct(result.wasted_bw_share)
            << " idle=" << TablePrinter::pct(result.idle_bw_share) << '\n';
  // Only printed when the governor actually intervened, so healthy runs
  // stay byte-identical between --governor and --no-governor.
  if (result.governor_interventions != 0) {
    std::cout << "governor interventions " << result.governor_interventions
              << '\n';
  }
}

int run_sweep(const std::string& which, const RunConfig& rc,
              const ModelSet& models, const SweepOptions& opts,
              const std::string& out_path, const char* argv0) {
  std::vector<Workload> workloads;
  if (which == "all") {
    workloads = all_two_app_workloads();
  } else if (which.rfind("random:", 0) == 0) {
    const u64 count = parse_u64(argv0, "--sweep random:N", which.substr(7), 1);
    workloads = random_two_app_workloads(static_cast<int>(count),
                                         rc.base_seed);
  } else {
    usage(argv0, "--sweep expects 'all' or 'random:N', got '" + which + "'");
  }

  // One ExperimentRunner per worker thread: the runner's alone-IPC cache
  // is mutable state, so workers must not share an instance.  Every runner
  // computes identical cached values, so results do not depend on jobs.
  SweepRunner sweep(opts, SweepRunner::RunFnFactory([&rc, &models]() {
                      auto runner = std::make_shared<ExperimentRunner>(rc);
                      return [runner, &models](const Workload& w) {
                        return runner->run(w, models);
                      };
                    }));
  const std::vector<SweepEntry> entries = sweep.run(workloads);
  if (shutdown_requested()) {
    std::cerr << "gpusim: sweep interrupted — finished pairs are in "
              << (opts.checkpoint_path.empty() ? std::string("(no checkpoint)")
                                               : opts.checkpoint_path)
              << "; rerun the same command to resume\n";
    return 6;
  }
  SweepRunner::write_results(out_path, entries);

  int failed = 0;
  for (const SweepEntry& e : entries) {
    if (!e.ok) {
      ++failed;
      std::cerr << "failed pair " << e.label << " after " << e.attempts
                << " attempts: " << e.error << '\n';
    }
  }
  const int torn = sweep.torn_lines_skipped();
  std::cout << "sweep: " << entries.size() << " pairs ("
            << sweep.resumed() << " resumed from checkpoint, " << failed
            << " failed, " << torn
            << " torn checkpoint lines skipped), results in " << out_path
            << '\n';
  // Torn lines mean a prior run crashed mid-write; the affected pairs
  // re-ran and the results are complete, but signal it distinctly so
  // automation can notice the crash.
  if (failed != 0) return 1;
  return torn != 0 ? 5 : 0;
}

int run_chaos(const RunConfig& rc, int schedules, u64 chaos_seed, int jobs,
              bool recovery, bool minimize, const std::string& checkpoint,
              const std::string& bundle_dir, const std::string& telemetry_dir,
              const std::string& out_path) {
  ChaosOptions opts;
  opts.gpu = rc.gpu;
  opts.schedules = schedules;
  opts.seed = chaos_seed;
  opts.cycles = rc.co_run_cycles;
  opts.jobs = jobs;
  opts.recovery = recovery;
  opts.governor = rc.governor;
  opts.minimize = minimize;
  opts.checkpoint_path = checkpoint;
  opts.base_seed = rc.base_seed;
  opts.cancel = shutdown_flag();
  opts.crash_bundle_dir = bundle_dir;
  opts.telemetry_dir = telemetry_dir;
  const ChaosReport report = run_chaos_campaign(opts);
  if (shutdown_requested()) {
    std::cerr << "gpusim: chaos campaign interrupted — finished schedules "
              << "are in "
              << (checkpoint.empty() ? std::string("(no checkpoint)")
                                     : checkpoint)
              << "; rerun the same command to resume\n";
    return 6;
  }
  write_chaos_report(out_path, report);

  std::cout << "chaos campaign: " << report.schedules << " schedules ("
            << report.resumed << " resumed from checkpoint), recovery "
            << (report.recovery ? "on" : "off") << "\n  outcomes: "
            << report.count(ChaosOutcome::kRecovered) << " recovered, "
            << report.count(ChaosOutcome::kGuardCaught) << " guard-caught, "
            << report.count(ChaosOutcome::kWrongResult) << " wrong-result, "
            << report.count(ChaosOutcome::kHang)
            << " hang\n  report in " << out_path << '\n';
  for (const ChaosJobResult& job : report.jobs) {
    if (job.outcome == ChaosOutcome::kRecovered) continue;
    std::cout << "  [" << job.index << "] " << job.workload << " "
              << to_string(job.outcome);
    if (!job.minimized_schedule.empty()) {
      std::cout << " (minimized to " << job.minimized_events << " event"
                << (job.minimized_events == 1 ? "" : "s") << ")";
    }
    std::cout << ": " << job.replay << '\n';
  }
  return 0;
}

int run_replay(const RunConfig& rc, const Workload& workload,
               PolicyKind policy, const std::string& spec, bool recovery,
               const std::string& telemetry_dir, const char* argv0) {
  if (policy != PolicyKind::kEven && policy != PolicyKind::kDaseFair) {
    usage(argv0, "--fault-schedule replay supports --policy even|dase-fair");
  }
  ChaosOptions opts;
  opts.gpu = rc.gpu;
  opts.cycles = rc.co_run_cycles;
  opts.recovery = recovery;
  opts.governor = rc.governor;
  opts.base_seed = rc.base_seed;
  opts.crash_bundle_dir = rc.crash_bundle_dir;
  // A replay routes through the chaos engine, so --telemetry-out behaves
  // like the chaos-mode directory form here too.
  opts.telemetry_dir = telemetry_dir;
  const FaultSchedule schedule = FaultSchedule::parse(spec);
  const ChaosJobResult r = run_chaos_job(
      opts, workload, policy == PolicyKind::kDaseFair, schedule);
  std::cout << "chaos replay: workload " << r.workload << ", policy "
            << r.policy << ", " << opts.cycles << " cycles, recovery "
            << (recovery ? "on" : "off") << "\n  schedule "
            << (r.schedule.empty() ? "(empty)" : r.schedule)
            << "\n  outcome " << to_string(r.outcome) << " — " << r.detail
            << "\n  final_cycle " << r.final_cycle << ", retries_issued "
            << r.retries_issued << ", duplicates_absorbed "
            << r.duplicates_absorbed << ", sanitized_estimates "
            << r.sanitized_estimates << '\n';
  return 0;
}

int run_jobs(const JobManagerOptions& opts, const std::string& job_file,
             const std::string& out_path) {
  JobManager manager(opts);
  const JobBatchReport report =
      job_file.empty() ? manager.resume()
                       : manager.run(parse_job_file(job_file));

  if (report.interrupted) {
    std::cerr << "gpusim: job batch interrupted — " << report.ok +
                     report.failed + report.quarantined
              << " of " << report.total << " jobs finished; resume with:\n"
              << "  gpusim_cli --jobs-resume " << opts.manifest_path << '\n';
    return report.exit_code();
  }
  write_job_report(out_path, report);

  std::cout << "job batch: " << report.total << " jobs (" << report.ok
            << " ok, " << report.failed << " failed, " << report.quarantined
            << " quarantined), report in " << out_path << '\n';
  for (const JobResult& r : report.jobs) {
    if (r.status == JobStatus::kOk) continue;
    std::cout << "  [" << r.index << "] " << to_string(r.status) << " ("
              << r.error_kind << "): " << r.error_message;
    if (!r.reproducer.empty()) std::cout << "\n      replay: " << r.reproducer;
    std::cout << '\n';
  }
  const int code = report.exit_code();
  if (code == 0 && manager.torn_lines_skipped() != 0) return 5;
  return code;
}

/// Builds one co-run simulation for the determinism audit: the workload's
/// applications with the harness's seeds, an even SM partition, and a DASE
/// model attached so estimator state is part of the compared hashes.
struct AuditSim {
  explicit AuditSim(const RunConfig& rc, const Workload& workload)
      : dase(std::make_unique<DaseModel>()) {
    std::vector<AppLaunch> launches;
    for (std::size_t i = 0; i < workload.apps.size(); ++i) {
      launches.push_back(AppLaunch{
          workload.apps[i],
          harness_app_seed(rc.base_seed, static_cast<int>(i))});
    }
    sim = std::make_unique<Simulation>(rc.gpu, std::move(launches));
    sim->set_watchdog(rc.watchdog_cycles);
    sim->gpu().set_partition(even_partition(
        sim->gpu().num_sms(), static_cast<int>(workload.apps.size())));
    sim->add_observer(dase.get());
    // Attached in both audit runs (same observer walk as assemble_corun),
    // so the compared state hashes cover governor state too and the audit
    // passes with --governor and --no-governor alike.
    governor = std::make_unique<PolicyGovernor>(
        GovernorOptions::from_config(rc.gpu, rc.governor), dase.get());
    sim->add_observer(governor.get());
    // Hub last, mirroring assemble_corun: the audit then also compares
    // TelemetryHub state (records, drained flight-recorder events) between
    // the two engine configurations, so telemetry nondeterminism would
    // surface here as a divergence.
    telemetry = std::make_unique<TelemetryHub>(
        std::vector<TelemetryEstimatorTap>{{"DASE", dase.get()}},
        [g = governor.get()]() { return g->interventions(); });
    sim->add_observer(telemetry.get());
    if (rc.faults.any()) {
      // Auditing under faults: both runs arm identical injectors, so the
      // fault decisions (and the injector's serialized counters) must
      // land on the same cycles in both — any divergence is a real bug.
      injector = std::make_unique<FaultInjector>(rc.faults);
      sim->gpu().set_fault_injector(injector.get());
    }
  }
  std::unique_ptr<DaseModel> dase;
  std::unique_ptr<PolicyGovernor> governor;
  std::unique_ptr<TelemetryHub> telemetry;
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<Simulation> sim;
};

int run_audit(const RunConfig& rc, const Workload& workload,
              Cycle hash_every) {
  // Run A is the production configuration (activity engine + fast-forward
  // on, unless --no-activity-sched asked for the legacy pairing); run B is
  // the plain per-cycle walk with every optimization off.  Any state-hash
  // divergence between them is a real bug in the skipping machinery.
  AuditSim a(rc, workload);
  AuditSim b(rc, workload);
  a.sim->set_activity_sched(rc.activity_sched);
  a.sim->set_fast_forward(true);
  b.sim->set_activity_sched(false);
  b.sim->set_fast_forward(false);
  const char* mode = rc.activity_sched
                         ? "activity engine + fast-forward on vs both off"
                         : "fast-forward on vs off, activity engine off";
  const DivergenceReport report =
      audit_divergence(*a.sim, *b.sim, rc.co_run_cycles, hash_every);
  std::cout << "determinism audit (" << workload.label() << ", " << mode
            << ", " << rc.co_run_cycles << " cycles, hash every "
            << hash_every << "): " << report.to_string() << '\n';
  return report.diverged ? 4 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpusim;

  // Every mode drains on SIGINT/SIGTERM: the unit of work in flight
  // finishes (or snapshots), its checkpoint line flushes whole, and we
  // exit 6 resumable.  A second signal hard-exits.
  install_shutdown_handlers();

  std::vector<std::string> app_names;
  RunConfig rc;
  rc.co_run_cycles = 300'000;
  PolicyKind policy = PolicyKind::kEven;
  ModelSet models{.dase = true};
  std::vector<int> split;
  bool have_split = false;
  std::string sweep_which;
  SweepOptions sweep_opts;
  sweep_opts.jobs = 0;  // CLI default: one worker per hardware thread
  std::string out_path = "sweep_results.json";
  bool have_out = false;
  bool have_snapshot_dir = false;
  bool audit_determinism = false;
  Cycle hash_every = 10'000;
  bool have_hash_every = false;
  bool profile_loop = false;
  int chaos_schedules = 0;
  u64 chaos_seed = 1;
  bool chaos_recovery = true;
  bool chaos_minimize = true;
  bool have_cycles = false;
  std::string fault_spec;
  std::string job_file;
  std::string jobs_resume;
  std::string manifest_path;
  double deadline_ms = 0.0;
  int job_max_retries = 2;
  int quarantine_after = 3;
  bool have_backoff = false;
  std::string bundle_dir = "crash-bundles";
  bool have_bundle_dir = false;
  bool no_bundle = false;
  std::string triage_bundle;
  std::string telemetry_out;
  std::string trace_out;
  std::string metrics_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const FlagInfo* flag = find_flag(arg);
    if (flag == nullptr) usage(argv[0], "unknown flag: " + arg);
    std::string value;
    if (flag->value_name != nullptr) {
      if (i + 1 >= argc) usage(argv[0], arg + " needs a value");
      value = argv[++i];
    }
    switch (flag->id) {
      case FlagId::kApps:
        app_names = split_csv(value);
        break;
      case FlagId::kCycles:
        rc.co_run_cycles = parse_u64(argv[0], arg, value, 1);
        have_cycles = true;
        break;
      case FlagId::kPolicy:
        if (value == "even") {
          policy = PolicyKind::kEven;
        } else if (value == "dase-fair") {
          policy = PolicyKind::kDaseFair;
        } else if (value == "leftover") {
          policy = PolicyKind::kLeftover;
        } else if (value == "temporal") {
          policy = PolicyKind::kTemporal;
        } else if (value == "qos") {
          policy = PolicyKind::kDaseQos;
        } else {
          usage(argv[0], "unknown policy: " + value);
        }
        break;
      case FlagId::kSplit:
        split.clear();
        for (const std::string& n : split_csv(value)) {
          split.push_back(
              static_cast<int>(parse_u64(argv[0], "--split entry", n, 1)));
        }
        have_split = true;
        break;
      case FlagId::kModels:
        models = ModelSet{};
        for (const std::string& m : split_csv(value)) {
          if (m == "dase") {
            models.dase = true;
          } else if (m == "mise") {
            models.mise = true;
          } else if (m == "asm") {
            models.asm_model = true;
          } else {
            usage(argv[0], "unknown model: " + m);
          }
        }
        break;
      case FlagId::kQosTarget:
        rc.qos.target_slowdown = parse_positive_double(argv[0], arg, value);
        break;
      case FlagId::kQuantum:
        rc.temporal.quantum = parse_u64(argv[0], arg, value, 1);
        break;
      case FlagId::kSeed:
        rc.base_seed = parse_u64(argv[0], arg, value, 0);
        break;
      case FlagId::kWatchdog:
        rc.watchdog_cycles = parse_u64(argv[0], arg, value, 0);
        break;
      case FlagId::kDeadlineMs:
        deadline_ms = parse_positive_double(argv[0], arg, value);
        break;
      case FlagId::kCycleBudget:
        rc.cycle_budget = parse_u64(argv[0], arg, value, 1);
        break;
      case FlagId::kMemBudget:
        rc.mem_budget = parse_u64(argv[0], arg, value, 1);
        break;
      case FlagId::kSweep:
        sweep_which = value;
        break;
      case FlagId::kCheckpoint:
        sweep_opts.checkpoint_path = value;
        break;
      case FlagId::kOut:
        out_path = value;
        have_out = true;
        break;
      case FlagId::kRetries:
        sweep_opts.max_attempts =
            static_cast<int>(parse_u64(argv[0], arg, value, 1));
        break;
      case FlagId::kBackoffMs:
        sweep_opts.backoff_ms =
            static_cast<int>(parse_u64(argv[0], arg, value, 0));
        have_backoff = true;
        break;
      case FlagId::kFailFast:
        sweep_opts.fail_fast = true;
        break;
      case FlagId::kJobs:
        sweep_opts.jobs = static_cast<int>(parse_u64(argv[0], arg, value, 1));
        break;
      case FlagId::kSnapshotEvery:
        rc.snapshot_every = parse_u64(argv[0], arg, value, 1);
        break;
      case FlagId::kSnapshotDir:
        rc.snapshot_dir = value;
        have_snapshot_dir = true;
        break;
      case FlagId::kRestore:
        rc.restore_path = value;
        break;
      case FlagId::kAuditDeterminism:
        audit_determinism = true;
        break;
      case FlagId::kHashEvery:
        hash_every = parse_u64(argv[0], arg, value, 1);
        have_hash_every = true;
        break;
      case FlagId::kNoActivitySched:
        rc.activity_sched = false;
        break;
      case FlagId::kGovernor:
        rc.governor = true;
        break;
      case FlagId::kNoGovernor:
        rc.governor = false;
        break;
      case FlagId::kProfileLoop:
        profile_loop = true;
        break;
      case FlagId::kChaos:
        chaos_schedules = static_cast<int>(parse_u64(argv[0], arg, value, 1));
        break;
      case FlagId::kChaosSeed:
        chaos_seed = parse_u64(argv[0], arg, value, 0);
        break;
      case FlagId::kNoMinimize:
        chaos_minimize = false;
        break;
      case FlagId::kNoRecovery:
        chaos_recovery = false;
        break;
      case FlagId::kFaultSchedule:
        fault_spec = value;
        break;
      case FlagId::kJobFile:
        job_file = value;
        break;
      case FlagId::kJobsResume:
        jobs_resume = value;
        break;
      case FlagId::kManifest:
        manifest_path = value;
        break;
      case FlagId::kMaxRetries:
        job_max_retries = static_cast<int>(parse_u64(argv[0], arg, value, 0));
        break;
      case FlagId::kQuarantineAfter:
        quarantine_after =
            static_cast<int>(parse_u64(argv[0], arg, value, 1));
        break;
      case FlagId::kAlone:
        if (value == "replay") {
          rc.alone_mode = RunConfig::AloneMode::kExactReplay;
        } else if (value == "cached") {
          rc.alone_mode = RunConfig::AloneMode::kCachedIpc;
        } else {
          usage(argv[0], "unknown alone mode: " + value);
        }
        break;
      case FlagId::kConfig:
        try {
          rc.gpu = load_config(value, rc.gpu);
        } catch (const std::exception& e) {
          usage(argv[0], e.what());
        }
        break;
      case FlagId::kBundleDir:
        bundle_dir = value;
        have_bundle_dir = true;
        break;
      case FlagId::kNoBundle:
        no_bundle = true;
        break;
      case FlagId::kTriage:
        triage_bundle = value;
        break;
      case FlagId::kTelemetryOut:
        telemetry_out = value;
        break;
      case FlagId::kTraceOut:
        trace_out = value;
        break;
      case FlagId::kMetricsOut:
        metrics_out = value;
        break;
      case FlagId::kDumpConfig:
        write_config(std::cout, GpuConfig{});
        return 0;
      case FlagId::kVersion:
        std::cout << build_fingerprint_line(kSnapshotVersion) << '\n';
        return 0;
      case FlagId::kListApps: {
        TablePrinter table({"abbr", "name", "Table3 BW", "warps/blk",
                            "mem_frac"},
                           14);
        table.print_header();
        for (const KernelProfile& app : app_registry()) {
          table.print_row(app.abbr, app.name.substr(0, 13),
                          TablePrinter::pct(app.table3_bw_util, 0),
                          app.warps_per_block,
                          TablePrinter::num(app.mem_fraction, 3));
        }
        return 0;
      }
      case FlagId::kHelp:
        // An explicit help request is not a usage error: stdout, exit 0.
        std::cout << render_usage(argv[0]);
        return 0;
    }
  }

  const bool jobs_mode = !job_file.empty() || !jobs_resume.empty();
  if (!triage_bundle.empty() &&
      (jobs_mode || !app_names.empty() || !sweep_which.empty() ||
       chaos_schedules > 0 || audit_determinism || !fault_spec.empty() ||
       !rc.restore_path.empty() || rc.snapshot_every != 0)) {
    usage(argv[0],
          "--triage is a standalone postmortem mode; it takes no workload "
          "or batch flags");
  }
  if (no_bundle && have_bundle_dir) {
    usage(argv[0], "--no-bundle and --bundle-dir are mutually exclusive");
  }
  if (have_snapshot_dir && rc.snapshot_every == 0) {
    usage(argv[0], "--snapshot-dir requires --snapshot-every");
  }
  if (have_hash_every && !audit_determinism) {
    usage(argv[0], "--hash-every requires --audit-determinism");
  }
  if (audit_determinism &&
      (!sweep_which.empty() || !rc.restore_path.empty() ||
       rc.snapshot_every != 0)) {
    usage(argv[0],
          "--audit-determinism is incompatible with --sweep, --restore and "
          "--snapshot-every");
  }
  if (!rc.restore_path.empty() && !sweep_which.empty()) {
    usage(argv[0],
          "--restore is for single runs; sweeps auto-resume via "
          "--snapshot-every and --checkpoint");
  }
  if (chaos_schedules > 0 &&
      (!sweep_which.empty() || !app_names.empty() || audit_determinism ||
       !rc.restore_path.empty() || rc.snapshot_every != 0)) {
    usage(argv[0],
          "--chaos is incompatible with --apps, --sweep, --restore, "
          "--snapshot-every and --audit-determinism");
  }
  if (!fault_spec.empty() && !sweep_which.empty()) {
    usage(argv[0], "--fault-schedule does not apply to sweeps");
  }
  if (!fault_spec.empty() && chaos_schedules > 0) {
    usage(argv[0],
          "--fault-schedule replays one schedule; --chaos generates its own");
  }
  if (!job_file.empty() && !jobs_resume.empty()) {
    usage(argv[0], "--job-file starts a batch; --jobs-resume continues one — "
                   "pick one");
  }
  if (jobs_mode &&
      (!app_names.empty() || !sweep_which.empty() || chaos_schedules > 0 ||
       audit_determinism || !fault_spec.empty() || !rc.restore_path.empty())) {
    usage(argv[0],
          "--job-file/--jobs-resume run whole batches and are incompatible "
          "with --apps, --sweep, --chaos, --fault-schedule, --restore and "
          "--audit-determinism");
  }
  if (!manifest_path.empty() && job_file.empty()) {
    usage(argv[0], "--manifest requires --job-file");
  }
  if (profile_loop &&
      (jobs_mode || chaos_schedules > 0 || !sweep_which.empty() ||
       audit_determinism || !fault_spec.empty())) {
    usage(argv[0],
          "--profile-loop applies to plain single runs (use the bench "
          "binary for profiled batch scenarios)");
  }
  // Telemetry flag shapes: --telemetry-out is a file for single runs and a
  // directory for batch modes; the trace and metrics exports are
  // single-output files, so batch modes reject them (their per-unit traces
  // come from the --telemetry-out directory instead).
  const bool batch_mode =
      jobs_mode || chaos_schedules > 0 || !sweep_which.empty();
  const bool replay_mode = !fault_spec.empty() && !audit_determinism;
  if (!trace_out.empty() && (batch_mode || replay_mode)) {
    usage(argv[0],
          "--trace-out applies to single --apps runs and --triage; batch "
          "modes and --fault-schedule replays take --telemetry-out DIR and "
          "write per-unit trace files there");
  }
  if (!metrics_out.empty() &&
      (batch_mode || replay_mode || !triage_bundle.empty())) {
    usage(argv[0], "--metrics-out applies to single --apps runs only");
  }
  if (!triage_bundle.empty() && !telemetry_out.empty()) {
    usage(argv[0],
          "--triage replays a bundle's recorded telemetry; it only exports "
          "a trace (--trace-out)");
  }

  // Crash forensics: runs, sweeps, --fault-schedule replays and job
  // batches bundle any terminal SimError under bundle_dir by default
  // (--no-bundle opts out).  Chaos campaigns *expect* failures, so they
  // bundle only when --bundle-dir was given explicitly.
  if (!no_bundle) rc.crash_bundle_dir = bundle_dir;

  // Wire the drain flag and the run limits into every mode.
  rc.cancel = shutdown_flag();
  sweep_opts.cancel = shutdown_flag();
  if (deadline_ms > 0.0 && !jobs_mode) {
    rc.wall_deadline = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(
                           static_cast<long long>(deadline_ms * 1000.0));
  }

  try {
    if (!triage_bundle.empty()) {
      return run_triage(triage_bundle, std::cout, trace_out);
    }
    if (jobs_mode) {
      JobManagerOptions jm;
      jm.gpu = rc.gpu;
      jm.base_seed = rc.base_seed;
      jm.default_cycles = have_cycles ? rc.co_run_cycles : 40'000;
      jm.default_deadline_ms = deadline_ms;
      jm.max_retries = job_max_retries;
      if (have_backoff) jm.backoff_base_ms = sweep_opts.backoff_ms;
      jm.quarantine_after = quarantine_after;
      jm.jobs = sweep_opts.jobs;
      jm.manifest_path = !jobs_resume.empty()
                             ? jobs_resume
                             : (!manifest_path.empty()
                                    ? manifest_path
                                    : job_file + ".manifest.jsonl");
      if (have_snapshot_dir) jm.snapshot_dir = rc.snapshot_dir;
      if (rc.snapshot_every != 0) jm.snapshot_every = rc.snapshot_every;
      jm.cancel = shutdown_flag();
      jm.verbose = true;
      jm.crash_bundle_dir = rc.crash_bundle_dir;
      jm.telemetry_dir = telemetry_out;
      return run_jobs(jm, job_file,
                      have_out ? out_path : "jobs_report.json");
    }
    if (chaos_schedules > 0) {
      if (!have_cycles) rc.co_run_cycles = 40'000;  // chaos default budget
      return run_chaos(rc, chaos_schedules, chaos_seed, sweep_opts.jobs,
                       chaos_recovery, chaos_minimize,
                       sweep_opts.checkpoint_path,
                       have_bundle_dir && !no_bundle ? bundle_dir
                                                     : std::string(),
                       telemetry_out,
                       have_out ? out_path : "chaos_report.json");
    }
    if (!sweep_which.empty()) {
      if (!app_names.empty()) {
        usage(argv[0], "--sweep and --apps are mutually exclusive");
      }
      // Sweeps use the cached alone IPC like the bench binaries do.
      rc.alone_mode = RunConfig::AloneMode::kCachedIpc;
      rc.crash_bundle_mode = "sweep";
      rc.telemetry.dir = telemetry_out;  // per-pair files under the directory
      return run_sweep(sweep_which, rc, models, sweep_opts, out_path,
                       argv[0]);
    }

    if (app_names.empty()) usage(argv[0], "--apps is required");
    if (static_cast<int>(app_names.size()) > kMaxApps) {
      usage(argv[0], "too many applications");
    }
    Workload workload;
    for (const std::string& name : app_names) {
      const auto app = find_app(name);
      if (!app) usage(argv[0], "unknown application: " + name);
      workload.apps.push_back(*app);
    }
    if (have_split) {
      if (split.size() != workload.apps.size()) {
        usage(argv[0], "--split must list one SM count per app");
      }
      const int total = std::accumulate(split.begin(), split.end(), 0);
      if (total != rc.gpu.num_sms) {
        usage(argv[0], "--split SM counts must sum to num_sms (" +
                           std::to_string(rc.gpu.num_sms) + "), got " +
                           std::to_string(total));
      }
    }

    if (audit_determinism) {
      if (!fault_spec.empty()) rc.faults = FaultSchedule::parse(fault_spec);
      return run_audit(rc, workload, hash_every);
    }
    if (!fault_spec.empty()) {
      return run_replay(rc, workload, policy, fault_spec, chaos_recovery,
                        telemetry_out, argv[0]);
    }

    LoopProfiler profiler;
    if (profile_loop) rc.profiler = &profiler;
    rc.telemetry.series = telemetry_out;
    rc.telemetry.trace = trace_out;
    rc.telemetry.metrics = metrics_out;
    ExperimentRunner runner(rc);
    const CoRunResult result = runner.run(workload, models, policy,
                                          have_split ? &split : nullptr);
    print_result(result, models);
    if (profile_loop) {
      std::cout << "{\n\"schema\": \"gpusim-loop-profile-v1\",\n"
                << profiler.to_json_lines(/*trailing_comma=*/true)
                << "\"profile_total_ns\": " << profiler.total_ns() << "\n}\n";
    }
    return 0;
  } catch (const SimError& e) {
    std::cerr << "simulation error [" << to_string(e.kind()) << "] in "
              << e.component() << ":\n" << e.what() << '\n';
    if (e.kind() == SimErrorKind::kInterrupted && rc.snapshot_every != 0) {
      std::cerr << "gpusim: run interrupted — a snapshot was written; rerun "
                   "the same command to resume\n";
    }
    return exit_code_for(e.kind());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
