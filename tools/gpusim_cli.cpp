// gpusim_cli — run arbitrary multiprogrammed workloads from the command
// line: pick applications, SM policy, estimation models and run length,
// and get the per-application slowdown report.
//
//   gpusim_cli --apps SD,SA
//   gpusim_cli --apps VA,CT,SD,SN --policy dase-fair --cycles 1000000
//   gpusim_cli --apps AA,SD --policy qos --qos-target 1.5
//   gpusim_cli --apps SB,VA --split 4,12 --models dase,mise,asm
//   gpusim_cli --list-apps
//   gpusim_cli --dump-config > gtx480.cfg ; gpusim_cli --config gtx480.cfg ...
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config_io.hpp"
#include "harness/runner.hpp"
#include "harness/table_printer.hpp"
#include "kernels/app_registry.hpp"

namespace {

using namespace gpusim;

[[noreturn]] void usage(const char* argv0, const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr
      << "usage: " << argv0 << " --apps A,B[,C,D] [options]\n"
      << "\n"
      << "  --apps LIST       comma-separated Table III abbreviations\n"
      << "  --cycles N        co-run length in cycles (default 300000)\n"
      << "  --policy P        even | dase-fair | leftover | temporal | qos\n"
      << "  --split N1,N2,..  static SM counts per app (overrides policy "
         "partitioning)\n"
      << "  --models LIST     estimators to attach: dase,mise,asm "
         "(default dase)\n"
      << "  --qos-target X    slowdown target for --policy qos "
         "(default 2.0)\n"
      << "  --quantum N       temporal-multitasking quantum (default "
         "100000)\n"
      << "  --seed N          workload seed (default 42)\n"
      << "  --alone MODE      replay | cached (default replay)\n"
      << "  --config FILE     load a GpuConfig key=value file\n"
      << "  --dump-config     print the default config file and exit\n"
      << "  --list-apps       print the application registry and exit\n";
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpusim;

  std::vector<std::string> app_names;
  RunConfig rc;
  rc.co_run_cycles = 300'000;
  PolicyKind policy = PolicyKind::kEven;
  ModelSet models{.dase = true};
  std::vector<int> split;
  bool have_split = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--apps") {
      app_names = split_csv(next());
    } else if (arg == "--cycles") {
      rc.co_run_cycles = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--policy") {
      const std::string p = next();
      if (p == "even") {
        policy = PolicyKind::kEven;
      } else if (p == "dase-fair") {
        policy = PolicyKind::kDaseFair;
      } else if (p == "leftover") {
        policy = PolicyKind::kLeftover;
      } else if (p == "temporal") {
        policy = PolicyKind::kTemporal;
      } else if (p == "qos") {
        policy = PolicyKind::kDaseQos;
      } else {
        usage(argv[0], "unknown policy: " + p);
      }
    } else if (arg == "--split") {
      split.clear();
      for (const std::string& n : split_csv(next())) {
        split.push_back(std::atoi(n.c_str()));
      }
      have_split = true;
    } else if (arg == "--models") {
      models = ModelSet{};
      for (const std::string& m : split_csv(next())) {
        if (m == "dase") {
          models.dase = true;
        } else if (m == "mise") {
          models.mise = true;
        } else if (m == "asm") {
          models.asm_model = true;
        } else {
          usage(argv[0], "unknown model: " + m);
        }
      }
    } else if (arg == "--qos-target") {
      rc.qos.target_slowdown = std::atof(next().c_str());
    } else if (arg == "--quantum") {
      rc.temporal.quantum = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      rc.base_seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--alone") {
      const std::string m = next();
      if (m == "replay") {
        rc.alone_mode = RunConfig::AloneMode::kExactReplay;
      } else if (m == "cached") {
        rc.alone_mode = RunConfig::AloneMode::kCachedIpc;
      } else {
        usage(argv[0], "unknown alone mode: " + m);
      }
    } else if (arg == "--config") {
      try {
        rc.gpu = load_config(next(), rc.gpu);
      } catch (const std::exception& e) {
        usage(argv[0], e.what());
      }
    } else if (arg == "--dump-config") {
      write_config(std::cout, GpuConfig{});
      return 0;
    } else if (arg == "--list-apps") {
      TablePrinter table({"abbr", "name", "Table3 BW", "warps/blk",
                          "mem_frac"},
                         14);
      table.print_header();
      for (const KernelProfile& app : app_registry()) {
        table.print_row(app.abbr, app.name.substr(0, 13),
                        TablePrinter::pct(app.table3_bw_util, 0),
                        app.warps_per_block,
                        TablePrinter::num(app.mem_fraction, 3));
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      usage(argv[0], "unknown flag: " + arg);
    }
  }

  if (app_names.empty()) usage(argv[0], "--apps is required");
  if (static_cast<int>(app_names.size()) > kMaxApps) {
    usage(argv[0], "too many applications");
  }
  Workload workload;
  for (const std::string& name : app_names) {
    const auto app = find_app(name);
    if (!app) usage(argv[0], "unknown application: " + name);
    workload.apps.push_back(*app);
  }
  if (have_split && split.size() != workload.apps.size()) {
    usage(argv[0], "--split must list one SM count per app");
  }

  ExperimentRunner runner(rc);
  const CoRunResult result = runner.run(workload, models, policy,
                                        have_split ? &split : nullptr);

  std::cout << "workload " << result.label << ", " << result.cycles
            << " cycles\n\n";
  std::vector<std::string> headers = {"app", "IPC_shared", "IPC_alone",
                                      "actual"};
  if (models.dase) headers.push_back("DASE");
  if (models.mise) headers.push_back("MISE");
  if (models.asm_model) headers.push_back("ASM");
  TablePrinter table(headers);
  table.print_header();
  for (const AppResult& app : result.apps) {
    std::ostringstream row;
    std::cout.width(12);
    std::cout << app.abbr;
    std::cout.width(12);
    std::cout << TablePrinter::num(app.ipc_shared, 3);
    std::cout.width(12);
    std::cout << TablePrinter::num(app.ipc_alone, 3);
    std::cout.width(12);
    std::cout << (app.actual_slowdown >= 1e5
                      ? std::string("starved")
                      : TablePrinter::num(app.actual_slowdown, 2));
    for (const char* model : {"DASE", "MISE", "ASM"}) {
      if (app.estimates.contains(model)) {
        std::cout.width(12);
        std::cout << TablePrinter::num(app.estimates.at(model), 2);
      }
    }
    std::cout << '\n';
  }
  std::cout << "\nunfairness "
            << (result.unfairness >= 1e5
                    ? std::string(">1e5")
                    : TablePrinter::num(result.unfairness, 2))
            << ", harmonic speedup "
            << TablePrinter::num(result.harmonic_speedup, 3)
            << ", policy actions " << result.repartitions << '\n';
  std::cout << "DRAM bandwidth:";
  for (std::size_t i = 0; i < result.apps.size(); ++i) {
    std::cout << ' ' << result.apps[i].abbr << '='
              << TablePrinter::pct(result.app_bw_share[i]);
  }
  std::cout << " wasted=" << TablePrinter::pct(result.wasted_bw_share)
            << " idle=" << TablePrinter::pct(result.idle_bw_share) << '\n';
  return 0;
}
