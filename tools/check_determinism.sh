#!/usr/bin/env bash
# Determinism gate: run representative workloads through the CLI's
# state-hash divergence audit (activity engine + fast-forward on vs both
# off, including under a fault schedule), run the randomized
# activity-engine equivalence suite, and verify a snapshotted + resumed
# run's report is byte-identical to an uninterrupted one.  A clean pass
# means the execution-strategy knobs cannot change simulated output.
#
#   tools/check_determinism.sh [build-dir]     (default: build)
#
# Environment:
#   GPUSIM_DETERMINISM_CYCLES   audit run length (default 120000)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
CYCLES="${GPUSIM_DETERMINISM_CYCLES:-120000}"
CLI="$BUILD_DIR/tools/gpusim_cli"

if [[ ! -x "$CLI" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target gpusim_cli
fi

# Memory-heavy, compute-heavy and mixed pairs, plus a four-app workload:
# the fast-forward only triggers on idle memory systems, so include a
# workload light enough to go idle.
WORKLOADS=("SD,SA" "SN,CT" "VA,CT,SD,SN" "BS,QR")

for apps in "${WORKLOADS[@]}"; do
  echo "== audit --apps $apps (activity engine + fast-forward on vs off, $CYCLES cycles)"
  "$CLI" --apps "$apps" --audit-determinism --cycles "$CYCLES" \
         --hash-every 10000
done

# Fault schedules pin the engine off per-cycle exactly like the legacy
# fast-forward guard; audit that the pinning itself is invisible.
echo "== audit --apps SD,SA under a fault schedule"
"$CLI" --apps SD,SA --audit-determinism --cycles "$CYCLES" \
       --fault-schedule "drop-resp:nth=200;stall:part=0,from=1000,until=5000;seed=7"

# Randomized equivalence suite: 24 random configs (SM/partition counts,
# queue depths, retry knobs) x {plain, faults, mid-run repartition,
# snapshot/restore}, engine on vs off.
echo "== activity_sched_test (randomized engine-on/off equivalence)"
if [[ ! -x "$BUILD_DIR/tests/activity_sched_test" ]]; then
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target activity_sched_test
fi
"$BUILD_DIR/tests/activity_sched_test"

# Snapshot/resume determinism: a run snapshotted every 20K cycles must
# print byte-identical results to a plain run.
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
echo "== snapshot vs plain run output"
"$CLI" --apps SD,SA --cycles "$CYCLES" --alone cached > "$TMP/plain.txt"
"$CLI" --apps SD,SA --cycles "$CYCLES" --alone cached \
       --snapshot-every 20000 --snapshot-dir "$TMP/snaps" > "$TMP/snap.txt"
diff "$TMP/plain.txt" "$TMP/snap.txt"

# Telemetry determinism: the hub's buffers ride in the SimState walk, so a
# run killed mid-flight and resumed from its snapshot must rewrite
# byte-identical JSONL/trace/metrics files.
echo "== telemetry files: kill + resume vs uninterrupted"
TCYC=600000
"$CLI" --apps SD,SA --policy dase-fair --cycles "$TCYC" --alone cached \
       --telemetry-out "$TMP/ref.jsonl" --trace-out "$TMP/ref.trace" \
       --metrics-out "$TMP/ref.prom" > /dev/null
"$CLI" --apps SD,SA --policy dase-fair --cycles "$TCYC" --alone cached \
       --snapshot-every 50000 --snapshot-dir "$TMP/tsnaps" \
       --telemetry-out "$TMP/kill.jsonl" --trace-out "$TMP/kill.trace" \
       --metrics-out "$TMP/kill.prom" > /dev/null 2>&1 &
CLI_PID=$!
# Signal as soon as the first snapshot lands so the kill is mid-run.
for _ in $(seq 1 600); do
  if ls "$TMP"/tsnaps/*.simstate > /dev/null 2>&1; then
    kill -TERM "$CLI_PID"
    break
  fi
  kill -0 "$CLI_PID" 2>/dev/null || break
  sleep 0.05
done
wait "$CLI_PID" || true
"$CLI" --apps SD,SA --policy dase-fair --cycles "$TCYC" --alone cached \
       --snapshot-every 50000 --snapshot-dir "$TMP/tsnaps" \
       --telemetry-out "$TMP/kill.jsonl" --trace-out "$TMP/kill.trace" \
       --metrics-out "$TMP/kill.prom" > /dev/null 2>&1
cmp "$TMP/ref.jsonl" "$TMP/kill.jsonl"
cmp "$TMP/ref.trace" "$TMP/kill.trace"
cmp "$TMP/ref.prom" "$TMP/kill.prom"

# Batch telemetry determinism: per-job files must be byte-identical for
# any --jobs worker count.
echo "== batch telemetry files: --jobs 1 vs --jobs 4"
cat > "$TMP/tel.jobs" <<'EOF'
run apps=SD,SA policy=dase-fair
run apps=SN,CT policy=even
EOF
"$CLI" --job-file "$TMP/tel.jobs" --manifest "$TMP/tel1.jsonl" --jobs 1 \
       --telemetry-out "$TMP/teldir" --out "$TMP/tel1.json" > /dev/null 2>&1
mv "$TMP/teldir" "$TMP/teldir1"
"$CLI" --job-file "$TMP/tel.jobs" --manifest "$TMP/tel4.jsonl" --jobs 4 \
       --telemetry-out "$TMP/teldir" --out "$TMP/tel4.json" > /dev/null 2>&1
diff -r "$TMP/teldir" "$TMP/teldir1"

echo "determinism check: OK"
