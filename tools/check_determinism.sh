#!/usr/bin/env bash
# Determinism gate: run representative workloads through the CLI's
# state-hash divergence audit (activity engine + fast-forward on vs both
# off, including under a fault schedule), run the randomized
# activity-engine equivalence suite, and verify a snapshotted + resumed
# run's report is byte-identical to an uninterrupted one.  A clean pass
# means the execution-strategy knobs cannot change simulated output.
#
#   tools/check_determinism.sh [build-dir]     (default: build)
#
# Environment:
#   GPUSIM_DETERMINISM_CYCLES   audit run length (default 120000)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
CYCLES="${GPUSIM_DETERMINISM_CYCLES:-120000}"
CLI="$BUILD_DIR/tools/gpusim_cli"

if [[ ! -x "$CLI" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target gpusim_cli
fi

# Memory-heavy, compute-heavy and mixed pairs, plus a four-app workload:
# the fast-forward only triggers on idle memory systems, so include a
# workload light enough to go idle.
WORKLOADS=("SD,SA" "SN,CT" "VA,CT,SD,SN" "BS,QR")

for apps in "${WORKLOADS[@]}"; do
  echo "== audit --apps $apps (activity engine + fast-forward on vs off, $CYCLES cycles)"
  "$CLI" --apps "$apps" --audit-determinism --cycles "$CYCLES" \
         --hash-every 10000
done

# Fault schedules pin the engine off per-cycle exactly like the legacy
# fast-forward guard; audit that the pinning itself is invisible.
echo "== audit --apps SD,SA under a fault schedule"
"$CLI" --apps SD,SA --audit-determinism --cycles "$CYCLES" \
       --fault-schedule "drop-resp:nth=200;stall:part=0,from=1000,until=5000;seed=7"

# Randomized equivalence suite: 24 random configs (SM/partition counts,
# queue depths, retry knobs) x {plain, faults, mid-run repartition,
# snapshot/restore}, engine on vs off.
echo "== activity_sched_test (randomized engine-on/off equivalence)"
if [[ ! -x "$BUILD_DIR/tests/activity_sched_test" ]]; then
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target activity_sched_test
fi
"$BUILD_DIR/tests/activity_sched_test"

# Snapshot/resume determinism: a run snapshotted every 20K cycles must
# print byte-identical results to a plain run.
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
echo "== snapshot vs plain run output"
"$CLI" --apps SD,SA --cycles "$CYCLES" --alone cached > "$TMP/plain.txt"
"$CLI" --apps SD,SA --cycles "$CYCLES" --alone cached \
       --snapshot-every 20000 --snapshot-dir "$TMP/snaps" > "$TMP/snap.txt"
diff "$TMP/plain.txt" "$TMP/snap.txt"

echo "determinism check: OK"
