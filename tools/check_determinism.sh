#!/usr/bin/env bash
# Determinism gate: run representative workloads through the CLI's
# state-hash divergence audit (fast-forward on vs one run with it off) and
# verify a snapshotted + resumed run's report is byte-identical to an
# uninterrupted one.  A clean pass means the execution-strategy knobs
# cannot change simulated output.
#
#   tools/check_determinism.sh [build-dir]     (default: build)
#
# Environment:
#   GPUSIM_DETERMINISM_CYCLES   audit run length (default 120000)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
CYCLES="${GPUSIM_DETERMINISM_CYCLES:-120000}"
CLI="$BUILD_DIR/tools/gpusim_cli"

if [[ ! -x "$CLI" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target gpusim_cli
fi

# Memory-heavy, compute-heavy and mixed pairs, plus a four-app workload:
# the fast-forward only triggers on idle memory systems, so include a
# workload light enough to go idle.
WORKLOADS=("SD,SA" "SN,CT" "VA,CT,SD,SN" "BS,QR")

for apps in "${WORKLOADS[@]}"; do
  echo "== audit --apps $apps (fast-forward on vs off, $CYCLES cycles)"
  "$CLI" --apps "$apps" --audit-determinism --cycles "$CYCLES" \
         --hash-every 10000
done

# Snapshot/resume determinism: a run snapshotted every 20K cycles must
# print byte-identical results to a plain run.
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
echo "== snapshot vs plain run output"
"$CLI" --apps SD,SA --cycles "$CYCLES" --alone cached > "$TMP/plain.txt"
"$CLI" --apps SD,SA --cycles "$CYCLES" --alone cached \
       --snapshot-every 20000 --snapshot-dir "$TMP/snaps" > "$TMP/snap.txt"
diff "$TMP/plain.txt" "$TMP/snap.txt"

echo "determinism check: OK"
