#!/usr/bin/env bash
# Policy-governor gate: drive the guarded-scheduling contracts
# (DESIGN.md §14) through the real CLI.
#
#   1. Transparency — a healthy run's output is byte-identical with
#      --governor and --no-governor, for both the static even split and
#      the live DASE-Fair loop.
#   2. Drain watchdog — a drain budget tightened to one estimation
#      interval makes the first real migration stall out: the run must
#      die with the typed migration-stalled error (exit 3) and per-SM
#      drain detail on stderr.
#   3. Forced preemption — the same stall with governor_force_preempt
#      on must complete instead, reporting the abort as an intervention.
#   4. Starvation breaker — a static 15/1 split pins the second app at
#      the min-SM floor; the breaker must trip and the run must report
#      governor interventions.
#
#   tools/check_governor.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/tools/gpusim_cli"

if [[ ! -x "$CLI" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target gpusim_cli
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail=0

# ---- 1. healthy runs are byte-identical with the governor on or off ----
for policy in even dase-fair; do
  "$CLI" --apps VA,SD --policy "$policy" --cycles 60000 --governor \
    > "$TMP/on.out" 2>&1
  "$CLI" --apps VA,SD --policy "$policy" --cycles 60000 --no-governor \
    > "$TMP/off.out" 2>&1
  if cmp -s "$TMP/on.out" "$TMP/off.out"; then
    echo "OK:   healthy $policy run byte-identical with --governor/--no-governor"
  else
    echo "FAIL: healthy $policy run differs between --governor and --no-governor"
    diff "$TMP/on.out" "$TMP/off.out" | head -20
    fail=1
  fi
done

# ---- 2. drain watchdog: a budget of one interval stalls the first real
#         migration and raises the typed error --------------------------
printf 'estimation_interval=50000\ngovernor_drain_budget=50000\n' \
  > "$TMP/stall.cfg"
rc=0
"$CLI" --apps VA,SD --policy dase-fair --cycles 300000 \
  --config "$TMP/stall.cfg" --bundle-dir "$TMP/bundles" \
  > "$TMP/stall.out" 2> "$TMP/stall.err" || rc=$?
if [[ "$rc" == 3 ]] && grep -q "migration-stalled" "$TMP/stall.err"; then
  echo "OK:   tight drain budget raised migration-stalled (exit $rc)"
else
  echo "FAIL: expected exit 3 + migration-stalled, got exit $rc"
  tail -5 "$TMP/stall.err"
  fail=1
fi
if grep -q "sm=" "$TMP/stall.err"; then
  echo "OK:   stall error carries per-SM drain detail"
else
  echo "FAIL: migration-stalled error has no per-SM drain detail"
  fail=1
fi

# ---- 3. the same stall with forced preemption completes ---------------
printf 'estimation_interval=50000\ngovernor_drain_budget=50000\ngovernor_force_preempt=true\n' \
  > "$TMP/preempt.cfg"
rc=0
"$CLI" --apps VA,SD --policy dase-fair --cycles 300000 \
  --config "$TMP/preempt.cfg" --no-bundle \
  > "$TMP/preempt.out" 2>&1 || rc=$?
if [[ "$rc" == 0 ]] && grep -q "governor interventions" "$TMP/preempt.out"; then
  echo "OK:   force-preempt run completed with interventions reported"
else
  echo "FAIL: force-preempt run: exit $rc, interventions line missing"
  tail -5 "$TMP/preempt.out"
  fail=1
fi

# ---- 4. a starved static split trips the breaker ----------------------
printf 'estimation_interval=10000\ngovernor_starvation_window=2\n' \
  > "$TMP/starve.cfg"
rc=0
"$CLI" --apps VA,SD --split 15,1 --cycles 60000 \
  --config "$TMP/starve.cfg" --no-bundle \
  > "$TMP/starve.out" 2>&1 || rc=$?
if [[ "$rc" == 0 ]] && grep -q "governor interventions" "$TMP/starve.out"; then
  echo "OK:   starved 15/1 split reported governor interventions"
else
  echo "FAIL: starved split run: exit $rc, interventions line missing"
  tail -5 "$TMP/starve.out"
  fail=1
fi
rc=0
"$CLI" --apps VA,SD --split 15,1 --cycles 60000 \
  --config "$TMP/starve.cfg" --no-bundle --no-governor \
  > "$TMP/starve_off.out" 2>&1 || rc=$?
if [[ "$rc" == 0 ]] && ! grep -q "governor interventions" "$TMP/starve_off.out"; then
  echo "OK:   --no-governor leaves the starved split unreported (old behavior)"
else
  echo "FAIL: --no-governor starved split: exit $rc or unexpected interventions"
  fail=1
fi

if [[ "$fail" != 0 ]]; then
  echo "governor check failed"
  exit 1
fi
echo "governor check passed"
