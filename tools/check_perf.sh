#!/usr/bin/env bash
# Performance gate: run bench_sim_throughput, write a fresh
# BENCH_throughput.json, and fail if cycles/sec regressed more than the
# tolerance against the committed baseline at the repo root.
#
#   tools/check_perf.sh [--update] [build-dir]   (default: build)
#
#   --update   overwrite the committed BENCH_throughput.json with the
#              fresh measurement (do this when the perf profile changes
#              intentionally, or when switching measurement hosts —
#              wall-clock baselines are machine-specific)
#
# Environment:
#   GPUSIM_PERF_TOLERANCE   allowed fractional regression (default 0.15)
set -euo pipefail

cd "$(dirname "$0")/.."

UPDATE=0
if [[ "${1:-}" == "--update" ]]; then
  UPDATE=1
  shift
fi
BUILD_DIR="${1:-build}"
TOLERANCE="${GPUSIM_PERF_TOLERANCE:-0.15}"
BASELINE="BENCH_throughput.json"
FRESH="$BUILD_DIR/BENCH_throughput.json"

if [[ ! -x "$BUILD_DIR/bench/bench_sim_throughput" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_sim_throughput
fi

"$BUILD_DIR/bench/bench_sim_throughput" "$FRESH"

# The baseline format keeps one key per line, so plain awk can read it.
json_key() {  # json_key FILE KEY
  awk -F'[:,]' -v key="\"$2\"" '$1 ~ key { gsub(/[ "]/, "", $2); print $2 }' "$1"
}

if [[ "$UPDATE" == 1 || ! -f "$BASELINE" ]]; then
  cp "$FRESH" "$BASELINE"
  echo "baseline updated: $BASELINE"
  exit 0
fi

fail=0
for key in sim_cycles_per_sec_fast_forward sim_cycles_per_sec_no_fast_forward; do
  base=$(json_key "$BASELINE" "$key")
  fresh=$(json_key "$FRESH" "$key")
  if [[ -z "$base" || -z "$fresh" ]]; then
    echo "FAIL: key $key missing from baseline or fresh measurement"
    fail=1
    continue
  fi
  ok=$(awk -v b="$base" -v f="$fresh" -v tol="$TOLERANCE" \
       'BEGIN { print (f >= b * (1.0 - tol)) ? 1 : 0 }')
  pct=$(awk -v b="$base" -v f="$fresh" 'BEGIN { printf "%+.1f", 100.0 * (f - b) / b }')
  if [[ "$ok" == 1 ]]; then
    echo "OK:   $key $fresh vs baseline $base (${pct}%)"
  else
    echo "FAIL: $key regressed beyond ${TOLERANCE}: $fresh vs baseline $base (${pct}%)"
    fail=1
  fi
done

if [[ "$fail" != 0 ]]; then
  echo "perf check failed — investigate, or refresh intentionally with tools/check_perf.sh --update"
  exit 1
fi
echo "perf check passed (tolerance ${TOLERANCE})"
