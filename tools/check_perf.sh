#!/usr/bin/env bash
# Performance gate: run bench_sim_throughput, write a fresh
# BENCH_throughput.json, and fail if cycles/sec regressed more than the
# tolerance against the committed baseline at the repo root.
#
#   tools/check_perf.sh [--update] [build-dir]   (default: build)
#
#   --update   overwrite the committed BENCH_throughput.json with the
#              fresh measurement (do this when the perf profile changes
#              intentionally, or when switching measurement hosts —
#              wall-clock baselines are machine-specific)
#
# Environment:
#   GPUSIM_PERF_TOLERANCE             allowed fractional regression for the
#                                     legacy cycles/sec keys (default 0.15)
#   GPUSIM_PERF_TOLERANCE_CONTENDED   allowed fractional regression for the
#                                     contended-scenario keys (default 0.10)
#   GPUSIM_PERF_RELATIVE_ONLY         1 = skip the absolute cycles/sec gates
#                                     (for CI hosts with unknown wall-clock
#                                     performance); still asserts the schema
#                                     keys exist, the activity engine's
#                                     contended speedup meets
#                                     GPUSIM_PERF_MIN_SPEEDUP (default 1.2),
#                                     and the governor overhead ratio meets
#                                     GPUSIM_PERF_MIN_GOVERNOR_RATIO
#                                     (default 0.98, i.e. <=2% overhead)
#   GPUSIM_PERF_MIN_TELEMETRY_RATIO   floor for the telemetry hub's
#                                     attached-vs-absent throughput ratio
#                                     (default 0.98, i.e. <=2% overhead while
#                                     no output flag is set; gated even in
#                                     relative-only mode)
set -euo pipefail

cd "$(dirname "$0")/.."

UPDATE=0
if [[ "${1:-}" == "--update" ]]; then
  UPDATE=1
  shift
fi
BUILD_DIR="${1:-build}"
TOLERANCE="${GPUSIM_PERF_TOLERANCE:-0.15}"
TOLERANCE_CONTENDED="${GPUSIM_PERF_TOLERANCE_CONTENDED:-0.10}"
RELATIVE_ONLY="${GPUSIM_PERF_RELATIVE_ONLY:-0}"
MIN_SPEEDUP="${GPUSIM_PERF_MIN_SPEEDUP:-1.2}"
MIN_GOVERNOR_RATIO="${GPUSIM_PERF_MIN_GOVERNOR_RATIO:-0.98}"
MIN_TELEMETRY_RATIO="${GPUSIM_PERF_MIN_TELEMETRY_RATIO:-0.98}"
BASELINE="BENCH_throughput.json"
FRESH="$BUILD_DIR/BENCH_throughput.json"

if [[ ! -x "$BUILD_DIR/bench/bench_sim_throughput" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_sim_throughput
fi

"$BUILD_DIR/bench/bench_sim_throughput" "$FRESH"

# The baseline format keeps one key per line, so plain awk can read it.
json_key() {  # json_key FILE KEY
  awk -F'[:,]' -v key="\"$2\"" '$1 ~ key { gsub(/[ "]/, "", $2); print $2 }' "$1"
}

fail=0

# Schema keys every fresh measurement must carry (the profiler attribution
# rides along so the contended number is always explainable).
for key in sim_cycles_per_sec_fast_forward sim_cycles_per_sec_no_fast_forward \
           contended_cycles_per_sec contended_cycles_per_sec_no_activity \
           contended_activity_speedup contended_fast_forwarded_fraction \
           governor_on_cycles_per_sec governor_off_cycles_per_sec \
           governor_overhead_ratio \
           telemetry_on_cycles_per_sec telemetry_off_cycles_per_sec \
           telemetry_overhead_ratio \
           profile_sm_advance_ns profile_partition_ns profile_total_ns; do
  if [[ -z "$(json_key "$FRESH" "$key")" ]]; then
    echo "FAIL: key $key missing from fresh measurement"
    fail=1
  fi
done

# The activity engine's contended speedup is host-independent (same binary,
# same run, engine on vs off), so it is gated even in relative-only mode.
speedup=$(json_key "$FRESH" contended_activity_speedup)
ok=$(awk -v s="${speedup:-0}" -v min="$MIN_SPEEDUP" \
     'BEGIN { print (s >= min) ? 1 : 0 }')
if [[ "$ok" == 1 ]]; then
  echo "OK:   contended_activity_speedup ${speedup}x (floor ${MIN_SPEEDUP}x)"
else
  echo "FAIL: contended_activity_speedup ${speedup}x below floor ${MIN_SPEEDUP}x"
  fail=1
fi

# The governor overhead is also host-independent (same binary, same co-run,
# governor on vs off), so the <=2% overhead contract (DESIGN.md §14) is
# gated even in relative-only mode.
gov_ratio=$(json_key "$FRESH" governor_overhead_ratio)
ok=$(awk -v r="${gov_ratio:-0}" -v min="$MIN_GOVERNOR_RATIO" \
     'BEGIN { print (r >= min) ? 1 : 0 }')
if [[ "$ok" == 1 ]]; then
  echo "OK:   governor_overhead_ratio ${gov_ratio} (floor ${MIN_GOVERNOR_RATIO})"
else
  echo "FAIL: governor_overhead_ratio ${gov_ratio} below floor ${MIN_GOVERNOR_RATIO}"
  fail=1
fi

# The telemetry hub's disabled-path cost is likewise host-independent (same
# binary, same co-run, hub attached vs absent), so the <=2% contract
# (DESIGN.md §15) is gated even in relative-only mode.
tel_ratio=$(json_key "$FRESH" telemetry_overhead_ratio)
ok=$(awk -v r="${tel_ratio:-0}" -v min="$MIN_TELEMETRY_RATIO" \
     'BEGIN { print (r >= min) ? 1 : 0 }')
if [[ "$ok" == 1 ]]; then
  echo "OK:   telemetry_overhead_ratio ${tel_ratio} (floor ${MIN_TELEMETRY_RATIO})"
else
  echo "FAIL: telemetry_overhead_ratio ${tel_ratio} below floor ${MIN_TELEMETRY_RATIO}"
  fail=1
fi

if [[ "$UPDATE" == 1 || ! -f "$BASELINE" ]]; then
  if [[ "$fail" != 0 ]]; then
    echo "perf check failed — not updating the baseline"
    exit 1
  fi
  cp "$FRESH" "$BASELINE"
  echo "baseline updated: $BASELINE"
  exit 0
fi

if [[ "$RELATIVE_ONLY" == 1 ]]; then
  if [[ "$fail" != 0 ]]; then
    echo "perf check failed (relative-only mode)"
    exit 1
  fi
  echo "perf check passed (relative-only mode; absolute gates skipped)"
  exit 0
fi

gate_key() {  # gate_key KEY TOLERANCE
  local key="$1" tol="$2" base fresh ok pct
  base=$(json_key "$BASELINE" "$key")
  fresh=$(json_key "$FRESH" "$key")
  if [[ -z "$base" || -z "$fresh" ]]; then
    echo "FAIL: key $key missing from baseline or fresh measurement"
    fail=1
    return
  fi
  ok=$(awk -v b="$base" -v f="$fresh" -v tol="$tol" \
       'BEGIN { print (f >= b * (1.0 - tol)) ? 1 : 0 }')
  pct=$(awk -v b="$base" -v f="$fresh" 'BEGIN { printf "%+.1f", 100.0 * (f - b) / b }')
  if [[ "$ok" == 1 ]]; then
    echo "OK:   $key $fresh vs baseline $base (${pct}%)"
  else
    echo "FAIL: $key regressed beyond ${tol}: $fresh vs baseline $base (${pct}%)"
    fail=1
  fi
}

# The escape-hatch (engine-off) number gets the looser legacy tolerance:
# it is the slowest measurement and therefore the noisiest in wall-clock
# terms; pathological engine-off regressions are still caught by the
# speedup floor above inverting.
for key in sim_cycles_per_sec_fast_forward sim_cycles_per_sec_no_fast_forward \
           contended_cycles_per_sec_no_activity; do
  gate_key "$key" "$TOLERANCE"
done
gate_key contended_cycles_per_sec "$TOLERANCE_CONTENDED"

if [[ "$fail" != 0 ]]; then
  echo "perf check failed — investigate, or refresh intentionally with tools/check_perf.sh --update"
  exit 1
fi
echo "perf check passed (tolerance ${TOLERANCE}, contended ${TOLERANCE_CONTENDED})"
