#!/usr/bin/env bash
# Crash-forensics gate: prove the black-box flight-recorder pipeline
# end-to-end on the real CLI binary:
#
#   1. a cycle-budget kill in a plain run emits a complete crash bundle
#      (manifest + snapshot + config + events) and exits with its
#      documented code (8);
#   2. `--triage <bundle>` restores the bundled state, replays to the
#      recorded failure cycle, and VERIFIES the 64-bit state hash
#      bit-exactly (exit 0);
#   3. the same holds for a watchdog-proven hang under fault injection
#      (the --fault-schedule chaos path);
#   4. corruption is contained: a tampered manifest hash makes triage
#      report divergence (exit 4), a truncated snapshot is a typed
#      failure (exit 3), and --no-bundle suppresses emission entirely;
#   5. --version prints the build fingerprint that bundles and manifests
#      embed.
#
#   tools/check_triage.sh [build-dir]     (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/tools/gpusim_cli"

if [[ ! -x "$CLI" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target gpusim_cli
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== --version prints the build fingerprint"
"$CLI" --version | grep -q "fingerprint 0x"

echo "== budget kill emits a complete bundle and exits 8"
RC=0
"$CLI" --apps SD,SA --cycles 60000 --cycle-budget 20000 \
       --bundle-dir "$TMP/bundles" > /dev/null 2>&1 || RC=$?
[[ "$RC" == "8" ]] || { echo "expected exit 8, got $RC" >&2; exit 1; }
RUN_BUNDLE="$(find "$TMP/bundles" -maxdepth 1 -name 'run-*' | head -1)"
[[ -n "$RUN_BUNDLE" ]] || { echo "no run bundle published" >&2; exit 1; }
for f in manifest.json snapshot.simstate config.txt events.txt; do
  [[ -f "$RUN_BUNDLE/$f" ]] || { echo "bundle missing $f" >&2; exit 1; }
done
if find "$TMP/bundles" -maxdepth 1 -name '.tmp-*' | grep -q .; then
  echo "unpublished .tmp- work dir left behind" >&2; exit 1
fi

echo "== --triage replays the run bundle to a bit-exact VERIFIED"
"$CLI" --triage "$RUN_BUNDLE" | grep -q "triage: VERIFIED"

echo "== watchdog hang under faults bundles and triages too"
RC=0
"$CLI" --apps SD,SA --cycles 40000 --watchdog 5000 \
       --fault-schedule 'stall:part=0,from=2000' --no-recovery \
       --bundle-dir "$TMP/bundles" > /dev/null 2>&1 || RC=$?
# the chaos replay classifies the hang and exits 0; the bundle still lands
CHAOS_BUNDLE="$(find "$TMP/bundles" -maxdepth 1 -name 'chaos-*' | head -1)"
[[ -n "$CHAOS_BUNDLE" ]] || { echo "no chaos bundle published" >&2; exit 1; }
"$CLI" --triage "$CHAOS_BUNDLE" | grep -q "triage: VERIFIED"

echo "== tampered recorded hash => divergence (exit 4)"
cp -r "$RUN_BUNDLE" "$TMP/tampered"
sed -i -E 's/"failure_state_hash": [0-9]+/"failure_state_hash": 12345/' \
    "$TMP/tampered/manifest.json"
RC=0
"$CLI" --triage "$TMP/tampered" > /dev/null 2>&1 || RC=$?
[[ "$RC" == "4" ]] || { echo "expected exit 4, got $RC" >&2; exit 1; }

echo "== truncated snapshot => typed failure (exit 3)"
cp -r "$RUN_BUNDLE" "$TMP/truncated"
head -c 100 "$RUN_BUNDLE/snapshot.simstate" > "$TMP/truncated/snapshot.simstate"
RC=0
"$CLI" --triage "$TMP/truncated" > /dev/null 2>&1 || RC=$?
[[ "$RC" == "3" ]] || { echo "expected exit 3, got $RC" >&2; exit 1; }

echo "== --no-bundle suppresses emission"
CLI_ABS="$(cd "$(dirname "$CLI")" && pwd)/$(basename "$CLI")"
mkdir -p "$TMP/nobundle"
RC=0
( cd "$TMP/nobundle" &&
  "$CLI_ABS" --apps SD,SA --cycles 60000 --cycle-budget 20000 --no-bundle ) \
  > /dev/null 2>&1 || RC=$?
[[ "$RC" == "8" ]] || { echo "expected exit 8, got $RC" >&2; exit 1; }
if [[ -e "$TMP/nobundle/crash-bundles" ]]; then
  echo "--no-bundle still wrote crash-bundles/" >&2; exit 1
fi

echo "check_triage: OK"
