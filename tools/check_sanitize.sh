#!/usr/bin/env bash
# Configure, build and run the whole test suite under AddressSanitizer +
# UndefinedBehaviorSanitizer.  Used before merging anything that touches
# queue/MSHR/crossbar plumbing; a clean pass means no leaks, no OOB, no UB
# across all tier-1 tests.
#
#   tools/check_sanitize.sh [build-dir]        (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGPUSIM_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error keeps CTest exit codes honest; detect_leaks catches any
# sweep-checkpoint or audit bookkeeping that forgets to free.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

ctest --test-dir "$BUILD_DIR" -j "$(nproc)" --output-on-failure
