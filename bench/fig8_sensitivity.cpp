// Fig. 8: DASE's estimation accuracy is robust to (a) uneven SM splits and
// (b) the total number of SMs.
#include "bench_util.hpp"
#include "kernels/workload_sets.hpp"
#include "metrics/metrics.hpp"

int main() {
  using namespace gpusim;
  using namespace gpusim::bench;

  banner("Fig. 8 — sensitivity of DASE accuracy",
         "paper Fig. 8(a) varying SM allocation, Fig. 8(b) varying SM count");
  const int num_pairs = pair_limit(10);
  const auto workloads = random_two_app_workloads(num_pairs, 8);

  std::printf("\n(a) DASE error vs. SM split (%d random pairs)\n", num_pairs);
  {
    ExperimentRunner runner(default_run_config());
    TablePrinter table({"split", "DASE error"}, 14);
    table.print_header();
    for (const auto& split : std::vector<std::vector<int>>{
             {4, 12}, {6, 10}, {8, 8}, {10, 6}, {12, 4}}) {
      std::vector<double> errors;
      for (const Workload& w : workloads) {
        const CoRunResult r = runner.run(w, ModelSet{.dase = true},
                                         PolicyKind::kEven, &split);
        errors.push_back(r.mean_error_of("DASE"));
      }
      table.print_row(std::to_string(split[0]) + "+" +
                          std::to_string(split[1]),
                      TablePrinter::pct(mean(errors)));
    }
  }

  std::printf("\n(b) DASE error vs. total SM count (even split)\n");
  {
    TablePrinter table({"total SMs", "DASE error"}, 14);
    table.print_header();
    for (int sms : {4, 8, 12, 16}) {
      RunConfig rc = default_run_config();
      rc.gpu.num_sms = sms;
      ExperimentRunner runner(rc);  // alone baselines use the same GPU size
      std::vector<double> errors;
      for (const Workload& w : workloads) {
        const CoRunResult r = runner.run(w, ModelSet{.dase = true});
        errors.push_back(r.mean_error_of("DASE"));
      }
      table.print_row(sms, TablePrinter::pct(mean(errors)));
    }
  }
  std::printf(
      "\npaper: DASE stays accurate across splits and SM counts (Fig. 8)\n");
  return 0;
}
