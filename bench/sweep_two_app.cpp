// Crash-safe full two-application sweep (the paper's 105-pair evaluation
// set, Section V) through the SimGuard SweepRunner: every finished pair is
// checkpointed to JSONL before the next one starts, failed pairs are
// retried with backoff, and re-running after an interruption resumes from
// the checkpoint and produces a byte-identical results file.
//
// Pairs run concurrently on a worker pool (REPRO_JOBS, default one per
// hardware thread); the results file is byte-identical for any job count.
//
//   sweep_two_app [checkpoint.jsonl [results.json]]
//
// Environment: REPRO_CORUN_CYCLES / REPRO_PAIR_LIMIT / REPRO_WATCHDOG /
// REPRO_JOBS as in the other bench binaries.
#include <atomic>
#include <memory>

#include "bench_util.hpp"
#include "harness/sweep.hpp"
#include "kernels/workload_sets.hpp"

int main(int argc, char** argv) {
  using namespace gpusim;
  using namespace gpusim::bench;

  const std::string checkpoint =
      argc > 1 ? argv[1] : "sweep_two_app.ckpt.jsonl";
  const std::string out = argc > 2 ? argv[2] : "sweep_two_app.json";

  banner("Crash-safe two-app sweep (all pairs)",
         "paper Section V workload set; resumable via " + checkpoint);

  auto workloads = all_two_app_workloads();
  const int limit = pair_limit(static_cast<int>(workloads.size()));
  if (limit < static_cast<int>(workloads.size())) {
    workloads.resize(limit);
  }

  const RunConfig rc = default_run_config();
  const ModelSet models{.dase = true, .mise = true, .asm_model = true};

  SweepOptions opts;
  opts.checkpoint_path = checkpoint;
  opts.max_attempts = 3;
  opts.backoff_ms = 100;
  opts.jobs = static_cast<int>(cycles_from_env("REPRO_JOBS", 0));

  std::atomic<int> done{0};
  const std::size_t total = workloads.size();
  SweepRunner sweep(
      opts, SweepRunner::RunFnFactory([&rc, &models, &done, total]() {
        auto runner = std::make_shared<ExperimentRunner>(rc);
        return [runner, &models, &done, total](const Workload& w) {
          std::printf("[%3d/%3zu] %s\n", done.fetch_add(1) + 1, total,
                      w.label().c_str());
          std::fflush(stdout);
          return runner->run(w, models);
        };
      }));

  const std::vector<SweepEntry> entries = sweep.run(workloads);
  SweepRunner::write_results(out, entries);

  int failed = 0;
  for (const SweepEntry& e : entries) {
    if (!e.ok) {
      ++failed;
      std::printf("FAILED %s after %d attempts: %s\n", e.label.c_str(),
                  e.attempts, e.error.c_str());
    }
  }
  std::printf("\n%zu pairs (%d resumed from checkpoint, %d failed)\n",
              entries.size(), sweep.resumed(), failed);
  std::printf("results: %s\n", out.c_str());
  return failed == 0 ? 0 : 1;
}
