// Fig. 2: (a) unfairness of two-application combinations under the even SM
// partition of the baseline architecture; (b) the DRAM bandwidth
// decomposition (per-app / wasted / idle) that explains it, including the
// SD-alone reference bar.
#include "bench_util.hpp"
#include "kernels/app_registry.hpp"
#include "kernels/workload_sets.hpp"

int main() {
  using namespace gpusim;
  using namespace gpusim::bench;

  banner("Fig. 2 — unfairness of the baseline even SM partition",
         "paper Fig. 2(a) unfairness, Fig. 2(b) DRAM BW decomposition");
  RunConfig rc = default_run_config();
  rc.alone_mode = RunConfig::AloneMode::kExactReplay;  // per-pair accuracy
  ExperimentRunner runner(rc);

  std::printf("\n(a) Unfairness (ideal = 1.0) and per-app slowdowns\n");
  TablePrinter ta({"workload", "unfairness", "s(app1)", "s(app2)"}, 14);
  ta.print_header();
  std::vector<CoRunResult> results;
  for (const Workload& w : motivation_workloads()) {
    results.push_back(runner.run(w, ModelSet{}));
    const CoRunResult& r = results.back();
    ta.print_row(r.label, TablePrinter::num(r.unfairness, 2),
                 TablePrinter::num(r.apps[0].actual_slowdown, 2),
                 TablePrinter::num(r.apps[1].actual_slowdown, 2));
  }

  std::printf("\n(b) DRAM bandwidth decomposition\n");
  TablePrinter tb({"workload", "app1", "app2", "wasted", "idle"}, 14);
  tb.print_header();
  for (const CoRunResult& r : results) {
    tb.print_row(r.label, TablePrinter::pct(r.app_bw_share[0], 1),
                 TablePrinter::pct(r.app_bw_share[1], 1),
                 TablePrinter::pct(r.wasted_bw_share, 1),
                 TablePrinter::pct(r.idle_bw_share, 1));
  }
  // The paper's reference bar: SD running alone uses 40.5% of the DRAM
  // bandwidth; its co-run share shrinking far below that is the unfairness
  // mechanism (Section III-A).
  const AloneStats& sd_alone = runner.alone_stats(*find_app("SD"));
  std::printf("%14s%14s\n", "SD-alone",
              TablePrinter::pct(sd_alone.bw_util, 1).c_str());
  return 0;
}
