// Ablation study of DASE's design choices (DESIGN.md Section 6) — not a
// paper figure, but the paper calls several of these out as deliberate
// decisions:
//   * alpha -> 1 clamp when alpha is large          (Section 4.1)
//   * dividing aggregate interference by BLP        (Eq. 14)
//   * the TLP and bandwidth caps on all-SM scaling  (Eq. 24 / Eq. 25)
//   * the estimation interval length                (Section 4.4, 50K)
//   * ATD set sampling vs. a full shadow directory  (Section 4.2 / Eq. 13)
//   * the empirical Requestmax factor 0.6           (Eq. 20)
#include "bench_util.hpp"
#include "baselines/priority_epochs.hpp"
#include "dase/dase_model.hpp"
#include "kernels/workload_sets.hpp"
#include "metrics/metrics.hpp"

namespace {

using namespace gpusim;
using namespace gpusim::bench;

/// Mean DASE error across `workloads` with the given model options and
/// GPU configuration tweaks.
double mean_error(const std::vector<Workload>& workloads,
                  const DaseOptions& options, const GpuConfig& gpu_cfg,
                  Cycle co_run_cycles) {
  RunConfig rc;
  rc.gpu = gpu_cfg;
  rc.co_run_cycles = co_run_cycles;
  rc.alone_mode = RunConfig::AloneMode::kCachedIpc;
  // One runner per variant: the alone-IPC cache is reused across pairs.
  ExperimentRunner runner(rc);

  std::vector<double> errors;
  for (const Workload& w : workloads) {
    // Run the co-run manually so the model options are controllable.
    std::vector<AppLaunch> launches;
    for (std::size_t i = 0; i < w.apps.size(); ++i) {
      launches.push_back(AppLaunch{w.apps[i], 42 + i * 7919});
    }
    Simulation sim(rc.gpu, std::move(launches));
    DaseModel model(options);
    sim.add_observer(&model);
    sim.gpu().set_partition(
        even_partition(rc.gpu.num_sms, static_cast<int>(w.apps.size())));
    sim.run(rc.co_run_cycles);

    for (std::size_t i = 0; i < w.apps.size(); ++i) {
      const double ipc_shared =
          static_cast<double>(sim.gpu().instructions().total(i)) /
          sim.gpu().now();
      const double actual =
          runner.alone_stats(w.apps[i]).ipc / std::max(1e-9, ipc_shared);
      errors.push_back(estimation_error(
          model.mean_slowdown(static_cast<AppId>(i)), std::max(1e-3, actual)));
    }
  }
  return mean(errors);
}

}  // namespace

int main() {
  banner("DASE ablations — contribution of each design choice",
         "DESIGN.md Section 6 (paper Sections 4.1-4.4)");
  const Cycle cycles = cycles_from_env("REPRO_CORUN_CYCLES", 150'000);
  const auto workloads = random_two_app_workloads(pair_limit(15), 31);
  const GpuConfig base_cfg;

  TablePrinter table({"variant", "mean error"}, 26);
  table.print_header();
  auto report = [&](const std::string& name, const DaseOptions& opt,
                    const GpuConfig& cfg) {
    table.print_row(name, TablePrinter::pct(
                              mean_error(workloads, opt, cfg, cycles)));
  };

  report("full DASE", DaseOptions{}, base_cfg);
  report("no alpha clamp", DaseOptions{.clamp_alpha = false}, base_cfg);
  report("no BLP divide (Eq.14)", DaseOptions{.divide_by_blp = false},
         base_cfg);
  report("no TLP cap (Eq.24)", DaseOptions{.apply_tlp_cap = false},
         base_cfg);
  report("no BW cap (Eq.25)", DaseOptions{.apply_bw_cap = false}, base_cfg);

  GpuConfig full_atd = base_cfg;
  full_atd.atd_sampled_sets = full_atd.l2_num_sets();
  report("full ATD (no sampling)", DaseOptions{}, full_atd);

  GpuConfig short_interval = base_cfg;
  short_interval.estimation_interval = 12'500;
  report("interval 12.5K", DaseOptions{}, short_interval);
  GpuConfig long_interval = base_cfg;
  long_interval.estimation_interval = 75'000;
  report("interval 75K", DaseOptions{}, long_interval);

  GpuConfig low_reqmax = base_cfg;
  low_reqmax.requestmax_factor = 0.45;
  report("Requestmax factor 0.45", DaseOptions{}, low_reqmax);
  GpuConfig high_reqmax = base_cfg;
  high_reqmax.requestmax_factor = 0.75;
  report("Requestmax factor 0.75", DaseOptions{}, high_reqmax);

  std::printf(
      "\nEach row is the mean DASE estimation error over the same %zu\n"
      "two-app workloads; compare against the 'full DASE' baseline.\n",
      workloads.size());
  return 0;
}
