// Fig. 3: the performance of a memory-intensive application is directly
// proportional to its memory request service rate — the observation the
// whole DASE model rests on (Eq. 3).
//
// We hold one memory-intensive kernel fixed on half the SMs and sweep the
// memory intensity of its co-runner: the more bandwidth the co-runner
// takes, the lower the measured service rate of the kernel under test, and
// its IPC must track that rate linearly.
#include <cmath>

#include "bench_util.hpp"
#include "gpu/simulator.hpp"
#include "kernels/app_registry.hpp"

int main() {
  using namespace gpusim;
  using namespace gpusim::bench;

  banner("Fig. 3 — performance vs. memory request service rate",
         "paper Fig. 3 (memory-intensive kernel, varying request service "
         "rate)");
  const Cycle cycles = cycles_from_env("REPRO_CORUN_CYCLES", 150'000);

  const KernelProfile subject = *find_app("VA");  // streaming, intensive
  TablePrinter table({"hog_frac", "req/kcyc", "IPC"}, 12);
  table.print_header();
  std::vector<double> rates;
  std::vector<double> ipcs;
  for (double hog_intensity :
       {0.001, 0.003, 0.005, 0.008, 0.012, 0.02, 0.05, 0.20, 0.50}) {
    KernelProfile hog = *find_app("SB");
    hog.mem_fraction = hog_intensity;
    GpuConfig cfg;
    Simulation sim(cfg, {AppLaunch{subject, 42}, AppLaunch{hog, 43}});
    sim.gpu().set_partition(even_partition(cfg.num_sms, 2));
    sim.run(cycles);
    u64 served = 0;
    for (int m = 0; m < sim.gpu().num_partitions(); ++m) {
      served +=
          sim.gpu().partition(m).mc().counters().requests_served.total(0);
    }
    const double rate = 1000.0 * served / sim.gpu().now();
    const double ipc =
        static_cast<double>(sim.gpu().instructions().total(0)) /
        sim.gpu().now();
    rates.push_back(rate);
    ipcs.push_back(ipc);
    table.print_row(TablePrinter::num(hog_intensity, 3),
                    TablePrinter::num(rate, 0), TablePrinter::num(ipc, 3));
  }

  // Pearson correlation between the subject's request service rate and its
  // IPC across the sweep.
  const int n = static_cast<int>(rates.size());
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (int i = 0; i < n; ++i) {
    sx += rates[i];
    sy += ipcs[i];
    sxx += rates[i] * rates[i];
    syy += ipcs[i] * ipcs[i];
    sxy += rates[i] * ipcs[i];
  }
  const double corr = (n * sxy - sx * sy) /
                      std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  std::printf(
      "\ncorrelation(IPC, service rate): %.4f\n"
      "(the paper's Fig. 3 shows an essentially linear relationship;\n"
      " expect > 0.99 here)\n",
      corr);
  return 0;
}
