// Fig. 9: unfairness and harmonic speedup of the DASE-Fair SM allocation
// policy vs. the default even partition.  Paper result: fairness improves
// by 16.1% and performance by 3.7% on average.
#include "bench_util.hpp"
#include "kernels/workload_sets.hpp"
#include "metrics/metrics.hpp"
#include "sched/dase_fair.hpp"

int main() {
  using namespace gpusim;
  using namespace gpusim::bench;

  banner("Fig. 9 — Even vs. DASE-Fair SM allocation",
         "paper Fig. 9 (unfairness -16.1%, H.Speedup +3.7% on average)");
  RunConfig rc = default_run_config();
  // The policy needs a few intervals to estimate, decide and drain.
  rc.co_run_cycles = cycles_from_env("REPRO_CORUN_CYCLES", 1'000'000);
  ExperimentRunner runner(rc);

  auto workloads = random_two_app_workloads(pair_limit(20), 77);
  // The paper excludes kernels with too few / too short thread blocks.
  std::erase_if(workloads, [](const Workload& w) {
    for (const auto& app : w.apps) {
      if (!dase_fair_eligible(app)) return true;
    }
    return false;
  });

  TablePrinter table({"workload", "unf(even)", "unf(fair)", "hs(even)",
                      "hs(fair)", "migs"},
                     11);
  table.print_header();
  std::vector<double> unf_even, unf_fair, hs_even, hs_fair;
  for (const Workload& w : workloads) {
    const CoRunResult even = runner.run(w, ModelSet{.dase = true});
    const CoRunResult fair =
        runner.run(w, ModelSet{.dase = true}, PolicyKind::kDaseFair);
    unf_even.push_back(even.unfairness);
    unf_fair.push_back(fair.unfairness);
    hs_even.push_back(even.harmonic_speedup);
    hs_fair.push_back(fair.harmonic_speedup);
    table.print_row(w.label(), TablePrinter::num(even.unfairness, 2),
                    TablePrinter::num(fair.unfairness, 2),
                    TablePrinter::num(even.harmonic_speedup, 3),
                    TablePrinter::num(fair.harmonic_speedup, 3),
                    fair.repartitions);
  }
  const double ue = mean(unf_even);
  const double uf = mean(unf_fair);
  const double he = mean(hs_even);
  const double hf = mean(hs_fair);
  table.print_row("AVG", TablePrinter::num(ue, 2), TablePrinter::num(uf, 2),
                  TablePrinter::num(he, 3), TablePrinter::num(hf, 3), "");
  std::printf("\nunfairness improvement: %.1f%%   (paper: 16.1%%)\n",
              100.0 * (ue - uf) / ue);
  std::printf("H.Speedup improvement:  %.1f%%   (paper: 3.7%%)\n",
              100.0 * (hf - he) / he);
  return 0;
}
