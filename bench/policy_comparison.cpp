// Beyond Fig. 9: every multitasking strategy the paper discusses, side by
// side — LEFTOVER (Section II: what current GPUs most likely do), temporal
// multitasking (full-GPU turns), the even spatial split (the paper's
// baseline), DASE-Fair (Section VII), and the future-work DASE-QoS
// controller.
#include "bench_util.hpp"
#include "kernels/workload_sets.hpp"
#include "metrics/metrics.hpp"
#include "sched/dase_fair.hpp"

int main() {
  using namespace gpusim;
  using namespace gpusim::bench;

  banner("Policy comparison — LEFTOVER / Temporal / Even / DASE-Fair / QoS",
         "paper Sections II, VII and the stated future work");
  RunConfig rc = default_run_config();
  rc.co_run_cycles = cycles_from_env("REPRO_CORUN_CYCLES", 1'000'000);
  rc.qos.target_slowdown = 2.0;
  ExperimentRunner runner(rc);

  auto workloads = random_two_app_workloads(pair_limit(6), 77);
  std::erase_if(workloads, [](const Workload& w) {
    for (const auto& app : w.apps) {
      if (!dase_fair_eligible(app)) return true;
    }
    return false;
  });

  struct Row {
    const char* name;
    PolicyKind kind;
  };
  const Row rows[] = {
      {"LEFTOVER", PolicyKind::kLeftover},
      {"Temporal", PolicyKind::kTemporal},
      {"Even", PolicyKind::kEven},
      {"DASE-Fair", PolicyKind::kDaseFair},
      {"DASE-QoS(2.0)", PolicyKind::kDaseQos},
  };

  for (const Workload& w : workloads) {
    std::printf("\n-- %s --\n", w.label().c_str());
    TablePrinter table({"policy", "s(app1)", "s(app2)", "unfairness",
                        "H.Speedup", "actions"},
                       14);
    table.print_header();
    for (const Row& row : rows) {
      const CoRunResult r = runner.run(w, ModelSet{.dase = true}, row.kind);
      auto slowdown_str = [](double s) {
        return s >= 1e5 ? std::string("starved") : TablePrinter::num(s, 2);
      };
      table.print_row(row.name, slowdown_str(r.apps[0].actual_slowdown),
                      slowdown_str(r.apps[1].actual_slowdown),
                      r.unfairness >= 1e5 ? std::string(">1e5")
                                          : TablePrinter::num(r.unfairness, 2),
                      TablePrinter::num(r.harmonic_speedup, 3),
                      r.repartitions);
    }
  }
  std::printf(
      "\nExpected shape: LEFTOVER starves the second application entirely\n"
      "(the paper's argument for spatial multitasking); temporal turns are\n"
      "costly because full-GPU switches must drain; DASE-Fair minimises\n"
      "unfairness; DASE-QoS pins app1 near its 2.0x target instead.\n");
  return 0;
}
