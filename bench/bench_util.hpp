// Shared helpers for the figure/table reproduction binaries.
//
// Every binary prints the same rows/series the paper reports.  Cycle
// budgets default to laptop-friendly values and can be scaled with
// environment variables:
//   REPRO_CORUN_CYCLES   co-run length (default 150000; paper used 5M)
//   REPRO_PAIR_LIMIT     cap on two-app workloads where applicable
//   REPRO_WATCHDOG       deadlock-watchdog threshold in cycles
#pragma once

#include <cstdio>
#include <string>

#include "harness/runner.hpp"
#include "harness/table_printer.hpp"

namespace gpusim::bench {

inline RunConfig default_run_config() {
  RunConfig rc;
  rc.co_run_cycles = cycles_from_env("REPRO_CORUN_CYCLES", 150'000);
  // The big sweeps use the cached steady-state alone IPC; equivalence with
  // exact replay is asserted by tests/harness/runner_test.
  rc.alone_mode = RunConfig::AloneMode::kCachedIpc;
  rc.watchdog_cycles = cycles_from_env("REPRO_WATCHDOG", rc.watchdog_cycles);
  return rc;
}

inline int pair_limit(int fallback) {
  return static_cast<int>(cycles_from_env("REPRO_PAIR_LIMIT",
                                          static_cast<Cycle>(fallback)));
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

}  // namespace gpusim::bench
