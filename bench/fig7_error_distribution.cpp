// Fig. 7: distribution of per-application slowdown-estimation errors for
// DASE / MISE / ASM across the evaluated workloads.  Paper: 70.2% of
// DASE's estimates err below 10% (MISE 4.2%, ASM 6.2%); 90.9% below 20%.
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "kernels/workload_sets.hpp"

int main() {
  using namespace gpusim;
  using namespace gpusim::bench;

  banner("Fig. 7 — error distribution across all workloads",
         "paper Fig. 7 (DASE <10%: 70.2%; <20%: 90.9%)");
  ExperimentRunner runner(default_run_config());

  auto pairs = random_two_app_workloads(pair_limit(60), 2016);
  auto quads = random_four_app_workloads(10, 2016);

  Histogram dase(0.1, 5);
  Histogram mise(0.1, 5);
  Histogram asm_h(0.1, 5);
  auto add_all = [&](const CoRunResult& r) {
    for (const AppResult& a : r.apps) {
      dase.add(a.estimation_error_of("DASE"));
      mise.add(a.estimation_error_of("MISE"));
      asm_h.add(a.estimation_error_of("ASM"));
    }
  };
  const ModelSet models{.dase = true, .mise = true, .asm_model = true};
  for (const Workload& w : pairs) add_all(runner.run(w, models));
  for (const Workload& w : quads) add_all(runner.run(w, models));

  TablePrinter table({"error-range", "DASE", "MISE", "ASM"}, 14);
  table.print_header();
  const char* labels[] = {"0-10%", "10-20%", "20-30%", "30-40%", "40-50%",
                          ">50%"};
  for (int b = 0; b <= 5; ++b) {
    table.print_row(labels[b], TablePrinter::pct(dase.fraction(b)),
                    TablePrinter::pct(mise.fraction(b)),
                    TablePrinter::pct(asm_h.fraction(b)));
  }
  std::printf("\ncumulative:  <10%%: DASE %s  MISE %s  ASM %s\n",
              TablePrinter::pct(dase.fraction_below(0.1)).c_str(),
              TablePrinter::pct(mise.fraction_below(0.1)).c_str(),
              TablePrinter::pct(asm_h.fraction_below(0.1)).c_str());
  std::printf("             <20%%: DASE %s  MISE %s  ASM %s\n",
              TablePrinter::pct(dase.fraction_below(0.2)).c_str(),
              TablePrinter::pct(mise.fraction_below(0.2)).c_str(),
              TablePrinter::pct(asm_h.fraction_below(0.2)).c_str());
  std::printf("paper:       <10%%: DASE 70.2%%  MISE 4.2%%  ASM 6.2%%\n");
  std::printf("             <20%%: DASE 90.9%%  MISE 16.5%%  ASM 19.8%%\n");
  return 0;
}
