// Simulator micro-benchmarks (google-benchmark): cycles/second of the full
// GPU model and of the hot substrate components.  Not a paper figure —
// this tracks the cost of running the reproduction itself.
#include <benchmark/benchmark.h>

#include "cache/cache.hpp"
#include "common/rng.hpp"
#include "gpu/simulator.hpp"
#include "kernels/app_registry.hpp"
#include "mem/dram.hpp"

namespace {

using namespace gpusim;

void BM_FullGpuCycle(benchmark::State& state) {
  GpuConfig cfg;
  Simulation sim(cfg, {AppLaunch{*find_app("VA"), 42},
                       AppLaunch{*find_app("SD"), 43}});
  sim.gpu().set_partition(even_partition(cfg.num_sms, 2));
  sim.run(20'000);  // warm up
  for (auto _ : state) {
    sim.run(1'000);
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * 1'000),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullGpuCycle)->Unit(benchmark::kMillisecond);

void BM_MemoryControllerSaturated(benchmark::State& state) {
  GpuConfig cfg;
  MemoryController mc(cfg, 2);
  Rng rng(7);
  std::vector<DramCmd> done;
  Cycle now = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1'000; ++i, ++now) {
      while (!mc.queue_full()) {
        DramCmd c;
        c.app = static_cast<AppId>(rng.next_below(2));
        c.bank = static_cast<int>(rng.next_below(16));
        c.row = rng.next_below(1 << 16);
        c.enqueued = now;
        mc.try_enqueue(c);
      }
      done.clear();
      mc.cycle(now, done);
    }
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_MemoryControllerSaturated)->Unit(benchmark::kMicrosecond);

void BM_CacheAccess(benchmark::State& state) {
  GpuConfig cfg;
  SetAssocCache cache(cfg.l2_num_sets(), cfg.l2_assoc, cfg.line_bytes);
  Rng rng(9);
  const u64 lines = static_cast<u64>(cfg.l2_num_sets()) * cfg.l2_assoc * 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.access(rng.next_below(lines) * cfg.line_bytes, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_AloneRunVA(benchmark::State& state) {
  GpuConfig cfg;
  for (auto _ : state) {
    Simulation sim(cfg, {AppLaunch{*find_app("VA"), 42}});
    sim.gpu().set_partition(even_partition(cfg.num_sms, 1));
    sim.run(10'000);
    benchmark::DoNotOptimize(sim.gpu().instructions().total(0));
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_AloneRunVA)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
