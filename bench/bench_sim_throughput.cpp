// Simulator-throughput baseline: measures raw cycles/sec of the
// cycle loop (fast-forward on and off), a memory-contended co-run with
// the activity-tracked cycle engine on (loop profiler attached) and off,
// a live DASE-Fair co-run with the policy governor on vs. off (the ≤2%
// overhead contract from DESIGN.md §14), a co-run with the TelemetryHub
// attached vs. absent (the ≤2% disabled-path contract from DESIGN.md §15),
// and the wall-clock of a small checkpoint-free sweep run serially vs. on
// the worker pool, then emits the numbers as a flat JSON object — the
// repo's BENCH_*.json perf baseline format.  tools/check_perf.sh runs
// this binary and fails on cycles/sec regressions against the committed
// BENCH_throughput.json (15% for the legacy keys, 10% for the contended
// scenario).
//
//   bench_sim_throughput [output.json]
//
// Environment:
//   BENCH_CYCLES        co-run cycles per timing run   (default 400000)
//   BENCH_SWEEP_PAIRS   pairs in the sweep timing      (default 4)
//   BENCH_SWEEP_CYCLES  co-run cycles per sweep pair   (default 60000)
//   BENCH_JOBS          parallel sweep workers         (default hw threads)
//
// Keys are written one per line so shell tooling can read them without a
// JSON parser.  Timings are wall-clock and machine-dependent by nature;
// refresh the committed baseline with `tools/check_perf.sh --update`
// when switching measurement hosts.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/loop_profiler.hpp"
#include "dase/dase_model.hpp"
#include "gpu/simulator.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "kernels/app_registry.hpp"
#include "kernels/workload_sets.hpp"
#include "telemetry/hub.hpp"

namespace {

using namespace gpusim;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct LoopResult {
  double cycles_per_sec = 0.0;
  double fast_forwarded_fraction = 0.0;
};

/// Cycles/sec of a two-app co-run over `cycles` cycles (after a short
/// warmup), with the idle-cycle fast-forward on or off.
LoopResult time_cycle_loop(const GpuConfig& cfg, Cycle cycles,
                           bool fast_forward) {
  Simulation sim(cfg, {AppLaunch{*find_app("VA"), 1001},
                       AppLaunch{*find_app("SD"), 1002}});
  sim.set_fast_forward(fast_forward);
  sim.gpu().set_partition(even_partition(sim.gpu().num_sms(), 2));

  sim.run(20'000);  // warm the pipeline so timing sees steady state
  const u64 ff_before = sim.gpu().fast_forwarded_cycles();
  const auto start = std::chrono::steady_clock::now();
  sim.run(cycles);
  const double elapsed = seconds_since(start);

  LoopResult r;
  r.cycles_per_sec =
      elapsed > 0.0 ? static_cast<double>(cycles) / elapsed : 0.0;
  r.fast_forwarded_fraction =
      static_cast<double>(sim.gpu().fast_forwarded_cycles() - ff_before) /
      static_cast<double>(cycles);
  return r;
}

/// Cycles/sec of a memory-contended co-run (two DRAM-saturating kernels
/// sharing six partitions) with the activity-tracked cycle engine on or
/// off.  This is the scenario the engine targets: most SMs idle on
/// outstanding misses each cycle while the memory system stays busy, so
/// the per-component wake tracking skips them without the global
/// fast-forward ever triggering.  The engine-on run carries the loop
/// profiler so the baseline records where the remaining wall time goes.
LoopResult time_contended_loop(const GpuConfig& cfg, Cycle cycles,
                               bool engine_on, LoopProfiler* profiler) {
  Simulation sim(cfg, {AppLaunch{*find_app("SD"), 2001},
                       AppLaunch{*find_app("SA"), 2002}});
  sim.set_activity_sched(engine_on);
  sim.set_fast_forward(engine_on);
  sim.gpu().set_partition(even_partition(sim.gpu().num_sms(), 2));

  sim.run(20'000);  // warm the pipeline so timing sees steady state
  if (profiler != nullptr) {
    profiler->reset();
    sim.set_loop_profiler(profiler);
  }
  const u64 ff_before = sim.gpu().fast_forwarded_cycles();
  const auto start = std::chrono::steady_clock::now();
  sim.run(cycles);
  const double elapsed = seconds_since(start);

  LoopResult r;
  r.cycles_per_sec =
      elapsed > 0.0 ? static_cast<double>(cycles) / elapsed : 0.0;
  r.fast_forwarded_fraction =
      static_cast<double>(sim.gpu().fast_forwarded_cycles() - ff_before) /
      static_cast<double>(cycles);
  return r;
}

struct GovernedResult {
  double on_cycles_per_sec = 0.0;
  double off_cycles_per_sec = 0.0;
  double overhead_ratio = 0.0;
};

/// Governor on/off throughput and the overhead ratio for the <=2% gate
/// (check_perf.sh, floor 0.98).  Both runs carry the full closed loop
/// (estimator, search, migrations); the only difference is whether
/// proposals route through the governor's validation/watchdog path.
/// Wall-clock noise on shared hosts dwarfs the governor's per-interval
/// work, so a pass advances a governed and an unguarded sim in
/// alternating timed slices — host-load spikes then land on both sides
/// roughly equally instead of skewing whichever whole run they hit — and
/// the gate takes the best of three passes.
GovernedResult time_governed_loop(Cycle cycles) {
  Workload w;
  w.apps.push_back(*find_app("VA"));
  w.apps.push_back(*find_app("SD"));
  const ModelSet models{.dase = true};

  GovernedResult r;
  const Cycle slice = std::max<Cycle>(1, cycles / 10);
  for (int pass = 0; pass < 3; ++pass) {
    RunConfig rc_on;
    rc_on.governor = true;
    RunConfig rc_off;
    rc_off.governor = false;
    CoRunAssembly on = assemble_corun(rc_on, w, models, PolicyKind::kDaseFair);
    CoRunAssembly off =
        assemble_corun(rc_off, w, models, PolicyKind::kDaseFair);
    on.sim->run(20'000);  // warm the pipelines so timing sees steady state
    off.sim->run(20'000);

    double on_elapsed = 0.0;
    double off_elapsed = 0.0;
    for (Cycle done = 0; done < cycles; done += slice) {
      const Cycle step = std::min(slice, cycles - done);
      auto start = std::chrono::steady_clock::now();
      on.sim->run(step);
      on_elapsed += seconds_since(start);
      start = std::chrono::steady_clock::now();
      off.sim->run(step);
      off_elapsed += seconds_since(start);
    }
    if (on_elapsed <= 0.0 || off_elapsed <= 0.0) continue;
    const double on_cps = static_cast<double>(cycles) / on_elapsed;
    const double off_cps = static_cast<double>(cycles) / off_elapsed;
    r.on_cycles_per_sec = std::max(r.on_cycles_per_sec, on_cps);
    r.off_cycles_per_sec = std::max(r.off_cycles_per_sec, off_cps);
    r.overhead_ratio = std::max(r.overhead_ratio, on_cps / off_cps);
  }
  return r;
}

struct TelemetryResult {
  double on_cycles_per_sec = 0.0;
  double off_cycles_per_sec = 0.0;
  double overhead_ratio = 0.0;
};

/// TelemetryHub attached vs. absent, for the <=2% disabled-path contract
/// (check_perf.sh, floor 0.98).  "Disabled" is the hub's only state — file
/// flags never touch the loop — so the honest comparison is an observer
/// walk with the hub against one without it.  Same alternating-slice,
/// best-of-three discipline as time_governed_loop: host-load spikes land
/// on both sides instead of skewing one whole run.
TelemetryResult time_telemetry_loop(const GpuConfig& cfg, Cycle cycles) {
  TelemetryResult r;
  const Cycle slice = std::max<Cycle>(1, cycles / 10);
  for (int pass = 0; pass < 3; ++pass) {
    Simulation with_hub(cfg, {AppLaunch{*find_app("VA"), 3001},
                              AppLaunch{*find_app("SD"), 3002}});
    Simulation without_hub(cfg, {AppLaunch{*find_app("VA"), 3001},
                                 AppLaunch{*find_app("SD"), 3002}});
    DaseModel dase_with;
    DaseModel dase_without;
    with_hub.gpu().set_partition(even_partition(with_hub.gpu().num_sms(), 2));
    without_hub.gpu().set_partition(
        even_partition(without_hub.gpu().num_sms(), 2));
    with_hub.add_observer(&dase_with);
    without_hub.add_observer(&dase_without);
    TelemetryHub hub({{"DASE", &dase_with}}, [] { return u64{0}; });
    with_hub.add_observer(&hub);

    with_hub.run(20'000);  // warm the pipelines so timing sees steady state
    without_hub.run(20'000);

    double on_elapsed = 0.0;
    double off_elapsed = 0.0;
    for (Cycle done = 0; done < cycles; done += slice) {
      const Cycle step = std::min(slice, cycles - done);
      auto start = std::chrono::steady_clock::now();
      with_hub.run(step);
      on_elapsed += seconds_since(start);
      start = std::chrono::steady_clock::now();
      without_hub.run(step);
      off_elapsed += seconds_since(start);
    }
    if (on_elapsed <= 0.0 || off_elapsed <= 0.0) continue;
    const double on_cps = static_cast<double>(cycles) / on_elapsed;
    const double off_cps = static_cast<double>(cycles) / off_elapsed;
    r.on_cycles_per_sec = std::max(r.on_cycles_per_sec, on_cps);
    r.off_cycles_per_sec = std::max(r.off_cycles_per_sec, off_cps);
    r.overhead_ratio = std::max(r.overhead_ratio, on_cps / off_cps);
  }
  return r;
}

/// Wall-clock of a checkpoint-free sweep over the first `pairs` two-app
/// workloads with the given worker count.
double time_sweep(const RunConfig& rc, int pairs, int jobs) {
  std::vector<Workload> workloads = all_two_app_workloads();
  workloads.resize(static_cast<std::size_t>(pairs));

  SweepOptions opts;
  opts.max_attempts = 1;
  opts.jobs = jobs;
  const ModelSet models{.dase = true};
  SweepRunner sweep(opts, SweepRunner::RunFnFactory([&rc, &models]() {
                      auto runner = std::make_shared<ExperimentRunner>(rc);
                      return [runner, &models](const Workload& w) {
                        return runner->run(w, models);
                      };
                    }));

  const auto start = std::chrono::steady_clock::now();
  sweep.run(workloads);
  return seconds_since(start);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpusim::bench;

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_throughput.json";
  const Cycle loop_cycles = cycles_from_env("BENCH_CYCLES", 400'000);
  const int sweep_pairs =
      static_cast<int>(cycles_from_env("BENCH_SWEEP_PAIRS", 4));
  const int hw =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  const int sweep_jobs =
      static_cast<int>(cycles_from_env("BENCH_JOBS", static_cast<Cycle>(hw)));

  banner("Simulator throughput baseline",
         "cycle-loop cycles/sec + sweep wall-time (BENCH_throughput.json)");

  GpuConfig cfg;
  const LoopResult fast = time_cycle_loop(cfg, loop_cycles, true);
  const LoopResult slow = time_cycle_loop(cfg, loop_cycles, false);

  LoopProfiler profiler;
  const LoopResult contended =
      time_contended_loop(cfg, loop_cycles, true, &profiler);
  const LoopResult contended_off =
      time_contended_loop(cfg, loop_cycles, false, nullptr);
  const double contended_speedup =
      contended_off.cycles_per_sec > 0.0
          ? contended.cycles_per_sec / contended_off.cycles_per_sec
          : 0.0;

  const GovernedResult governed = time_governed_loop(loop_cycles);
  const TelemetryResult telemetry = time_telemetry_loop(cfg, loop_cycles);

  RunConfig rc;
  rc.co_run_cycles = cycles_from_env("BENCH_SWEEP_CYCLES", 60'000);
  rc.alone_mode = RunConfig::AloneMode::kCachedIpc;
  const double serial_s = time_sweep(rc, sweep_pairs, 1);
  // A parallel sweep on a single hardware thread (or with --jobs 1) just
  // re-times the serial path plus scheduling noise; the "speedup" it
  // reports would be ~1.0 by construction and meaningless.  Skip the
  // timing and flag the key instead of publishing a junk number.
  const bool parallel_meaningful = hw > 1 && sweep_jobs > 1;
  const double parallel_s =
      parallel_meaningful ? time_sweep(rc, sweep_pairs, sweep_jobs) : 0.0;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "\"schema\": \"gpusim-bench-throughput-v1\",\n");
  std::fprintf(out, "\"host_hw_threads\": %d,\n", hw);
  std::fprintf(out, "\"loop_cycles\": %llu,\n",
               static_cast<unsigned long long>(loop_cycles));
  std::fprintf(out, "\"sim_cycles_per_sec_fast_forward\": %.1f,\n",
               fast.cycles_per_sec);
  std::fprintf(out, "\"sim_cycles_per_sec_no_fast_forward\": %.1f,\n",
               slow.cycles_per_sec);
  std::fprintf(out, "\"fast_forwarded_fraction\": %.4f,\n",
               fast.fast_forwarded_fraction);
  std::fprintf(out, "\"contended_cycles_per_sec\": %.1f,\n",
               contended.cycles_per_sec);
  std::fprintf(out, "\"contended_cycles_per_sec_no_activity\": %.1f,\n",
               contended_off.cycles_per_sec);
  std::fprintf(out, "\"contended_activity_speedup\": %.3f,\n",
               contended_speedup);
  std::fprintf(out, "\"contended_fast_forwarded_fraction\": %.4f,\n",
               contended.fast_forwarded_fraction);
  std::fprintf(out, "%s", profiler.to_json_lines(true).c_str());
  std::fprintf(out, "\"profile_total_ns\": %llu,\n",
               static_cast<unsigned long long>(profiler.total_ns()));
  std::fprintf(out, "\"governor_on_cycles_per_sec\": %.1f,\n",
               governed.on_cycles_per_sec);
  std::fprintf(out, "\"governor_off_cycles_per_sec\": %.1f,\n",
               governed.off_cycles_per_sec);
  std::fprintf(out, "\"governor_overhead_ratio\": %.4f,\n",
               governed.overhead_ratio);
  std::fprintf(out, "\"telemetry_on_cycles_per_sec\": %.1f,\n",
               telemetry.on_cycles_per_sec);
  std::fprintf(out, "\"telemetry_off_cycles_per_sec\": %.1f,\n",
               telemetry.off_cycles_per_sec);
  std::fprintf(out, "\"telemetry_overhead_ratio\": %.4f,\n",
               telemetry.overhead_ratio);
  std::fprintf(out, "\"sweep_pairs\": %d,\n", sweep_pairs);
  std::fprintf(out, "\"sweep_corun_cycles\": %llu,\n",
               static_cast<unsigned long long>(rc.co_run_cycles));
  std::fprintf(out, "\"sweep_jobs\": %d,\n", sweep_jobs);
  std::fprintf(out, "\"sweep_serial_seconds\": %.3f,\n", serial_s);
  std::fprintf(out, "\"sweep_parallel_seconds\": %.3f,\n", parallel_s);
  std::fprintf(out, "\"sweep_parallel_speedup\": %.3f,\n",
               parallel_s > 0.0 ? serial_s / parallel_s : 0.0);
  std::fprintf(out, "\"sweep_parallel_speedup_meaningful\": %s\n",
               parallel_meaningful ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);

  std::printf(
      "cycles/sec: %.0f (fast-forward on, %.1f%% skipped), %.0f (off)\n",
      fast.cycles_per_sec, 100.0 * fast.fast_forwarded_fraction,
      slow.cycles_per_sec);
  std::printf(
      "contended SD+SA: %.0f cycles/sec with the activity engine "
      "(%.1f%% fast-forwarded), %.0f without (%.2fx)\n",
      contended.cycles_per_sec, 100.0 * contended.fast_forwarded_fraction,
      contended_off.cycles_per_sec, contended_speedup);
  std::printf(
      "governed DASE-Fair VA+SD: %.0f cycles/sec with the governor, "
      "%.0f without (best-pair ratio %.3f)\n",
      governed.on_cycles_per_sec, governed.off_cycles_per_sec,
      governed.overhead_ratio);
  std::printf(
      "telemetry VA+SD: %.0f cycles/sec with the hub attached, "
      "%.0f without (best-pair ratio %.3f)\n",
      telemetry.on_cycles_per_sec, telemetry.off_cycles_per_sec,
      telemetry.overhead_ratio);
  if (parallel_meaningful) {
    std::printf("sweep %d pairs: %.3fs serial, %.3fs with %d jobs (%.2fx)\n",
                sweep_pairs, serial_s, parallel_s, sweep_jobs,
                parallel_s > 0.0 ? serial_s / parallel_s : 0.0);
  } else {
    std::printf(
        "sweep %d pairs: %.3fs serial; parallel speedup skipped "
        "(%d hardware thread(s), %d sweep job(s) — nothing to compare)\n",
        sweep_pairs, serial_s, hw, sweep_jobs);
  }
  std::printf("baseline written: %s\n", out_path.c_str());
  return 0;
}
