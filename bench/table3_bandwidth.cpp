// Table III: attained DRAM bandwidth utilisation of each application when
// executing alone on the entire GPU device.
#include "bench_util.hpp"
#include "kernels/app_registry.hpp"

int main() {
  using namespace gpusim;
  using namespace gpusim::bench;

  banner("Table III — alone DRAM bandwidth utilisation",
         "paper Table III (15 applications)");
  ExperimentRunner runner(default_run_config());

  TablePrinter table({"app", "name", "measured", "paper", "delta"}, 14);
  table.print_header();
  double total_abs_delta = 0.0;
  for (const KernelProfile& app : app_registry()) {
    const AloneStats& stats = runner.alone_stats(app);
    const double delta = stats.bw_util - app.table3_bw_util;
    total_abs_delta += std::abs(delta);
    table.print_row(app.abbr, app.name.substr(0, 13),
                    TablePrinter::pct(stats.bw_util, 0),
                    TablePrinter::pct(app.table3_bw_util, 0),
                    TablePrinter::num(delta * 100, 1));
  }
  std::printf("\nmean |delta|: %.1f percentage points\n",
              total_abs_delta / app_registry().size() * 100.0);
  return 0;
}
