// Fig. 6: slowdown estimation accuracy on 30 random four-application
// workloads (4 SMs each under the even partition).  Paper result:
// DASE 11.4%, MISE 62.6%, ASM 58%.
#include "bench_util.hpp"
#include "kernels/workload_sets.hpp"
#include "metrics/metrics.hpp"

int main() {
  using namespace gpusim;
  using namespace gpusim::bench;

  banner("Fig. 6 — estimation error on four-application workloads",
         "paper Fig. 6 (DASE 11.4%, MISE 62.6%, ASM 58%)");
  ExperimentRunner runner(default_run_config());

  auto workloads = random_four_app_workloads(30, /*seed=*/2016);
  const int limit = pair_limit(static_cast<int>(workloads.size()));
  workloads.resize(std::min<std::size_t>(workloads.size(), limit));

  TablePrinter table({"workload", "DASE", "MISE", "ASM"}, 15);
  table.print_header();
  std::vector<double> dase_errors;
  std::vector<double> mise_errors;
  std::vector<double> asm_errors;
  for (const Workload& w : workloads) {
    const CoRunResult r = runner.run(
        w, ModelSet{.dase = true, .mise = true, .asm_model = true});
    dase_errors.push_back(r.mean_error_of("DASE"));
    mise_errors.push_back(r.mean_error_of("MISE"));
    asm_errors.push_back(r.mean_error_of("ASM"));
    table.print_row(r.label, TablePrinter::pct(dase_errors.back()),
                    TablePrinter::pct(mise_errors.back()),
                    TablePrinter::pct(asm_errors.back()));
  }
  table.print_row("AVG", TablePrinter::pct(mean(dase_errors)),
                  TablePrinter::pct(mean(mise_errors)),
                  TablePrinter::pct(mean(asm_errors)));
  std::printf("\npaper:  DASE 11.4%%   MISE 62.6%%   ASM 58%%\n");
  std::printf(
      "(the CPU models degrade further with more apps because they cannot\n"
      " extrapolate to the all-SM alone baseline — paper Section VI)\n");
  return 0;
}
