// Fig. 5: slowdown estimation accuracy of DASE vs. MISE vs. ASM across all
// C(15,2) = 105 two-application workloads under the even SM partition.
// Paper result: DASE 8.8%, MISE 36.3%, ASM 32.8% average error.
#include "bench_util.hpp"
#include "kernels/workload_sets.hpp"
#include "metrics/metrics.hpp"

int main() {
  using namespace gpusim;
  using namespace gpusim::bench;

  banner("Fig. 5 — estimation error on two-application workloads",
         "paper Fig. 5 (DASE 8.8%, MISE 36.3%, ASM 32.8%)");
  ExperimentRunner runner(default_run_config());

  auto workloads = all_two_app_workloads();
  const int limit = pair_limit(static_cast<int>(workloads.size()));
  if (limit < static_cast<int>(workloads.size())) {
    workloads.resize(limit);
    std::printf("(REPRO_PAIR_LIMIT=%d: reporting a prefix of the 105 pairs)\n",
                limit);
  }

  TablePrinter table({"workload", "DASE", "MISE", "ASM"}, 12);
  table.print_header();
  std::vector<double> dase_errors;
  std::vector<double> mise_errors;
  std::vector<double> asm_errors;
  for (const Workload& w : workloads) {
    const CoRunResult r = runner.run(
        w, ModelSet{.dase = true, .mise = true, .asm_model = true});
    const double de = r.mean_error_of("DASE");
    const double me = r.mean_error_of("MISE");
    const double ae = r.mean_error_of("ASM");
    dase_errors.push_back(de);
    mise_errors.push_back(me);
    asm_errors.push_back(ae);
    table.print_row(r.label, TablePrinter::pct(de), TablePrinter::pct(me),
                    TablePrinter::pct(ae));
  }
  table.print_row("AVG", TablePrinter::pct(mean(dase_errors)),
                  TablePrinter::pct(mean(mise_errors)),
                  TablePrinter::pct(mean(asm_errors)));
  std::printf("\npaper:  DASE 8.8%%   MISE 36.3%%   ASM 32.8%%\n");
  return 0;
}
