// Fig. 4: for a memory-bandwidth-bound application (SB), the number of
// requests served per kilocycle when it runs alone is close to the *sum*
// of all applications' served requests when it co-runs — the observation
// behind DASE's MBB estimator (Eq. 18).
#include "bench_util.hpp"
#include "gpu/simulator.hpp"
#include "kernels/app_registry.hpp"

namespace {

gpusim::u64 served_total(gpusim::Gpu& gpu, gpusim::AppId app) {
  gpusim::u64 served = 0;
  for (int m = 0; m < gpu.num_partitions(); ++m) {
    served += gpu.partition(m).mc().counters().requests_served.total(app);
  }
  return served;
}

}  // namespace

int main() {
  using namespace gpusim;
  using namespace gpusim::bench;

  banner("Fig. 4 — served requests of an MBB app: alone vs. co-run sum",
         "paper Fig. 4 (SB paired with other applications)");
  const Cycle cycles = cycles_from_env("REPRO_CORUN_CYCLES", 150'000);
  GpuConfig cfg;

  // SB running alone on the whole GPU.
  const KernelProfile sb = *find_app("SB");
  double alone_rate = 0.0;
  {
    Simulation sim(cfg, {AppLaunch{sb, 42}});
    sim.gpu().set_partition(even_partition(cfg.num_sms, 1));
    sim.run(cycles);
    alone_rate = 1000.0 * served_total(sim.gpu(), 0) / sim.gpu().now();
  }
  std::printf("\nSB alone: %.0f served requests / 1000 cycles\n\n",
              alone_rate);

  TablePrinter table({"workload", "SB", "partner", "sum", "alone", "ratio"},
                     11);
  table.print_header();
  for (const char* partner : {"VA", "SA", "SD", "CT", "NN", "AT", "QR"}) {
    Simulation sim(cfg, {AppLaunch{sb, 42},
                         AppLaunch{*find_app(partner), 42 + 7919}});
    sim.gpu().set_partition(even_partition(cfg.num_sms, 2));
    sim.run(cycles);
    const double r0 = 1000.0 * served_total(sim.gpu(), 0) / sim.gpu().now();
    const double r1 = 1000.0 * served_total(sim.gpu(), 1) / sim.gpu().now();
    table.print_row(std::string("SB+") + partner, TablePrinter::num(r0, 0),
                    TablePrinter::num(r1, 0), TablePrinter::num(r0 + r1, 0),
                    TablePrinter::num(alone_rate, 0),
                    TablePrinter::num((r0 + r1) / alone_rate, 2));
  }
  std::printf(
      "\nratio ~= 1 confirms Eq. 18: alone, the MBB kernel would absorb the\n"
      "service capacity all concurrent applications consume together.\n");
  return 0;
}
