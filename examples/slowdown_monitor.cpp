// Run-time slowdown dashboard: four concurrent applications on one GPU,
// with DASE's per-interval slowdown estimates printed live — the usage
// mode the paper motivates (detect unfairness *while* workloads run,
// without any offline profiling).
//
//   ./slowdown_monitor [appA appB appC appD]   (default: VA CT SD SN)
#include <cstdlib>
#include <iostream>
#include <vector>

#include "dase/dase_model.hpp"
#include "gpu/simulator.hpp"
#include "harness/runner.hpp"
#include "kernels/app_registry.hpp"
#include "metrics/metrics.hpp"

namespace {

using namespace gpusim;

class Dashboard final : public IntervalObserver {
 public:
  Dashboard(const DaseModel* model, std::vector<std::string> names)
      : model_(model), names_(std::move(names)) {}

  void on_interval(const IntervalSample& sample, Gpu& gpu) override {
    (void)gpu;
    const auto& est = model_->latest();
    if (est.empty()) return;
    std::printf("t=%7llu |",
                static_cast<unsigned long long>(sample.start + sample.length));
    std::vector<double> slowdowns;
    for (std::size_t i = 0; i < est.size(); ++i) {
      std::printf(" %s %5.2f (%s,a=%.2f) |", names_[i].c_str(),
                  est[i].slowdown_all, est[i].mbb ? "MBB" : "NMBB",
                  est[i].alpha);
      slowdowns.push_back(est[i].slowdown_all);
    }
    std::printf("  est.unfairness %.2f\n", unfairness(slowdowns));
  }

 private:
  const DaseModel* model_;
  std::vector<std::string> names_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gpusim;

  std::vector<std::string> names = {"VA", "CT", "SD", "SN"};
  if (argc == 5) {
    names = {argv[1], argv[2], argv[3], argv[4]};
  }
  std::vector<AppLaunch> launches;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto app = find_app(names[i]);
    if (!app) {
      std::cerr << "unknown application: " << names[i] << '\n';
      return EXIT_FAILURE;
    }
    launches.push_back(AppLaunch{*app, 42 + i * 7919});
  }

  const Cycle cycles = cycles_from_env("REPRO_CORUN_CYCLES", 400'000);
  std::cout << "Live DASE monitoring of 4 concurrent applications (4 SMs "
               "each), "
            << cycles << " cycles:\n\n";

  GpuConfig cfg;
  Simulation sim(cfg, std::move(launches));
  DaseModel dase;
  Dashboard dashboard(&dase, names);
  sim.add_observer(&dase);
  sim.add_observer(&dashboard);
  sim.gpu().set_partition(even_partition(cfg.num_sms, 4));
  sim.run(cycles);

  std::cout << "\ncumulative estimates (mean over intervals past warm-up):\n";
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::printf("  %s: %.2f\n", names[i].c_str(),
                dase.mean_slowdown(static_cast<AppId>(i)));
  }
  return EXIT_SUCCESS;
}
