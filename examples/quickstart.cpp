// Quickstart: run two applications concurrently under an even SM split,
// estimate their slowdowns with DASE at run time, then compare against the
// measured actual slowdowns (alone-replay methodology).
//
//   ./quickstart [appA] [appB]      (default: SD SA — the paper's Fig. 2 pair)
#include <cstdlib>
#include <iostream>

#include "harness/runner.hpp"
#include "harness/table_printer.hpp"
#include "kernels/app_registry.hpp"

int main(int argc, char** argv) {
  using namespace gpusim;

  const std::string a = argc > 1 ? argv[1] : "SD";
  const std::string b = argc > 2 ? argv[2] : "SA";
  const auto app_a = find_app(a);
  const auto app_b = find_app(b);
  if (!app_a || !app_b) {
    std::cerr << "unknown application; available:";
    for (const auto& app : app_registry()) std::cerr << ' ' << app.abbr;
    std::cerr << '\n';
    return EXIT_FAILURE;
  }

  RunConfig rc;
  rc.co_run_cycles = cycles_from_env("REPRO_CORUN_CYCLES", 300'000);

  std::cout << "Co-running " << a << " + " << b << " on a "
            << rc.gpu.num_sms << "-SM GPU for " << rc.co_run_cycles
            << " cycles (even split), DASE sampling every "
            << rc.gpu.estimation_interval << " cycles...\n\n";

  ExperimentRunner runner(rc);
  const CoRunResult result =
      runner.run(Workload{{*app_a, *app_b}}, ModelSet{.dase = true});

  TablePrinter table({"app", "IPC_shared", "IPC_alone", "actual", "DASE",
                      "error"});
  table.print_header();
  for (const AppResult& app : result.apps) {
    table.print_row(app.abbr, TablePrinter::num(app.ipc_shared, 3),
                    TablePrinter::num(app.ipc_alone, 3),
                    TablePrinter::num(app.actual_slowdown, 2),
                    TablePrinter::num(app.estimates.at("DASE"), 2),
                    TablePrinter::pct(app.estimation_error_of("DASE")));
  }
  std::cout << "\nUnfairness (actual): "
            << TablePrinter::num(result.unfairness, 2)
            << "   Harmonic speedup: "
            << TablePrinter::num(result.harmonic_speedup, 3) << '\n';
  std::cout << "DRAM bandwidth: ";
  for (std::size_t i = 0; i < result.apps.size(); ++i) {
    std::cout << result.apps[i].abbr << '='
              << TablePrinter::pct(result.app_bw_share[i]) << ' ';
  }
  std::cout << "wasted=" << TablePrinter::pct(result.wasted_bw_share)
            << " idle=" << TablePrinter::pct(result.idle_bw_share) << '\n';
  return EXIT_SUCCESS;
}
