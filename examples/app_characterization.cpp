// Characterise every registered application running alone on the full GPU:
// IPC, DRAM bandwidth utilisation (vs. its Table III target), row-buffer
// hit rate, L2 hit rate and the memory stall fraction α.
//
// Useful both as an API example and as the calibration companion for the
// synthetic workload substitution documented in DESIGN.md.
#include <iostream>

#include "gpu/simulator.hpp"
#include "harness/runner.hpp"
#include "harness/table_printer.hpp"
#include "kernels/app_registry.hpp"

int main() {
  using namespace gpusim;

  const Cycle cycles = cycles_from_env("REPRO_CORUN_CYCLES", 200'000);
  GpuConfig cfg;

  TablePrinter table({"app", "IPC", "BW_util", "Table3", "rowhit", "L2hit",
                      "alpha", "req/kcyc"},
                     10);
  table.print_header();

  for (const KernelProfile& profile : app_registry()) {
    Simulation sim(cfg, {AppLaunch{profile, 42}});
    Gpu& gpu = sim.gpu();
    gpu.set_partition(even_partition(gpu.num_sms(), 1));
    sim.run(cycles);

    u64 data_cycles = 0;
    u64 served = 0;
    u64 row_hits = 0;
    u64 row_misses = 0;
    u64 l2_acc = 0;
    u64 l2_hit = 0;
    for (int p = 0; p < gpu.num_partitions(); ++p) {
      const McCounters& mcc = gpu.partition(p).mc().counters();
      data_cycles += mcc.bus_data_cycles.total(0);
      served += mcc.requests_served.total(0);
      row_hits += mcc.row_hits.total(0);
      row_misses += mcc.row_misses.total(0);
      l2_acc += gpu.partition(p).counters().l2_accesses.total(0);
      l2_hit += gpu.partition(p).counters().l2_hits.total(0);
    }
    u64 stall = 0;
    for (int s = 0; s < gpu.num_sms(); ++s) {
      stall += gpu.sm(s).counters().mem_stall_cycles.total();
    }
    const double capacity =
        static_cast<double>(gpu.num_partitions()) * gpu.now();
    const double ipc =
        static_cast<double>(gpu.instructions().total(0)) / gpu.now();
    const double bw = data_cycles / capacity;
    const double rowhit =
        row_hits + row_misses > 0
            ? static_cast<double>(row_hits) / (row_hits + row_misses)
            : 0.0;
    const double l2 =
        l2_acc > 0 ? static_cast<double>(l2_hit) / l2_acc : 0.0;
    const double alpha = static_cast<double>(stall) /
                         (static_cast<double>(gpu.num_sms()) * gpu.now());

    table.print_row(profile.abbr, TablePrinter::num(ipc, 2),
                    TablePrinter::pct(bw, 0),
                    TablePrinter::pct(profile.table3_bw_util, 0),
                    TablePrinter::pct(rowhit, 0), TablePrinter::pct(l2, 0),
                    TablePrinter::num(alpha, 2),
                    TablePrinter::num(1000.0 * served / gpu.now(), 0));
  }
  return 0;
}
