// DASE-Fair in action: co-run two applications, watch the policy estimate
// slowdowns, search SM splits and migrate SMs by draining — then compare
// the final fairness against the static even partition.
//
//   ./fairness_scheduling [appA] [appB] [cycles]   (default: AA SD 1000000)
#include <cstdlib>
#include <iostream>

#include "dase/dase_model.hpp"
#include "gpu/simulator.hpp"
#include "harness/runner.hpp"
#include "harness/table_printer.hpp"
#include "kernels/app_registry.hpp"
#include "sched/dase_fair.hpp"

namespace {

using namespace gpusim;

/// Prints one line per estimation interval: current split + estimates.
class TimelinePrinter final : public IntervalObserver {
 public:
  explicit TimelinePrinter(const DaseModel* model) : model_(model) {}

  void on_interval(const IntervalSample& sample, Gpu& gpu) override {
    const auto& est = model_->latest();
    std::printf("  t=%7llu  split=%2d+%-2d  est=%.2f / %.2f%s\n",
                static_cast<unsigned long long>(sample.start + sample.length),
                gpu.sms_assigned(0), gpu.sms_assigned(1),
                est.empty() ? 0.0 : est[0].slowdown_all,
                est.empty() ? 0.0 : est[1].slowdown_all,
                gpu.migration_in_progress() ? "  [migrating]" : "");
  }

 private:
  const DaseModel* model_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gpusim;

  const std::string a = argc > 1 ? argv[1] : "AA";
  const std::string b = argc > 2 ? argv[2] : "SD";
  const Cycle cycles = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                : cycles_from_env("REPRO_CORUN_CYCLES",
                                                  1'000'000);
  const auto app_a = find_app(a);
  const auto app_b = find_app(b);
  if (!app_a || !app_b) {
    std::cerr << "unknown application abbreviation\n";
    return EXIT_FAILURE;
  }
  if (!dase_fair_eligible(*app_a) || !dase_fair_eligible(*app_b)) {
    std::cerr << "a selected kernel is unfit for SM reallocation "
                 "(too few / too short thread blocks)\n";
    return EXIT_FAILURE;
  }

  std::cout << "DASE-Fair timeline for " << a << "+" << b << " over "
            << cycles << " cycles:\n";
  GpuConfig cfg;
  Simulation sim(cfg, {AppLaunch{*app_a, 42}, AppLaunch{*app_b, 42 + 7919}});
  DaseModel dase;
  DaseFairPolicy policy(&dase);
  TimelinePrinter timeline(&dase);
  sim.add_observer(&dase);
  sim.add_observer(&timeline);
  sim.add_observer(&policy);
  sim.gpu().set_partition(even_partition(cfg.num_sms, 2));
  sim.run(cycles);
  std::cout << "repartitions performed: " << policy.repartitions() << "\n\n";

  // Head-to-head against the static even split, with measured (actual)
  // slowdowns from the alone-replay methodology.
  RunConfig rc;
  rc.co_run_cycles = cycles;
  rc.alone_mode = RunConfig::AloneMode::kCachedIpc;
  ExperimentRunner runner(rc);
  const Workload w{{*app_a, *app_b}};
  const CoRunResult even = runner.run(w, ModelSet{.dase = true});
  const CoRunResult fair =
      runner.run(w, ModelSet{.dase = true}, PolicyKind::kDaseFair);

  TablePrinter table({"policy", "unfairness", "H.Speedup", "s(" + a + ")",
                      "s(" + b + ")"},
                     12);
  table.print_header();
  table.print_row("Even", TablePrinter::num(even.unfairness, 2),
                  TablePrinter::num(even.harmonic_speedup, 3),
                  TablePrinter::num(even.apps[0].actual_slowdown, 2),
                  TablePrinter::num(even.apps[1].actual_slowdown, 2));
  table.print_row("DASE-Fair", TablePrinter::num(fair.unfairness, 2),
                  TablePrinter::num(fair.harmonic_speedup, 3),
                  TablePrinter::num(fair.apps[0].actual_slowdown, 2),
                  TablePrinter::num(fair.apps[1].actual_slowdown, 2));
  return EXIT_SUCCESS;
}
